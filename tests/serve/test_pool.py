"""The fork-pool execution backend: bit-identity, invalidation,
failover, and the HTTP bridge.

The load-bearing contract is differential, same as sharding's: a
:class:`PooledSearchService` — plain or composed with a shard
partition — must return answers **bit-identical** to the plain
single-store service (scores, pattern keys, subtree rows, ordering),
with every execution crossing a pipe to a pre-forked worker.  On top of
that sit the fault model (SIGKILL / mid-request death → inline
failover + respawn + ``worker_failovers``) and the version-guard
protocol (a store bump forks a fresh pool; workers never serve a stale
snapshot).
"""

from __future__ import annotations

import json

import pytest

from repro.datasets.example import EXAMPLE_NORMALIZER, example_graph_with_nodes
from repro.index.builder import build_indexes
from repro.index.incremental import add_entity
from repro.kg.pagerank import uniform_scores
from repro.search.service import SearchService
from repro.core.errors import SearchError
from repro.serve import start_http_server
from repro.serve.pool import ForkWorkerPool, PooledSearchService

from tests.serve.test_http import get, post

QUERY = "database software company revenue"
ALGORITHMS = ("pattern_enum", "linear_topk", "linear_full", "baseline")


def fingerprint(result):
    """Everything observable about the answers, subtree rows included."""
    return [
        (
            answer.score,
            answer.pattern_key,
            answer.num_subtrees,
            [tuple(combo) for combo in answer.subtrees],
            answer.estimated_score,
        )
        for answer in result.answers
    ]


def body_fingerprint(body: bytes):
    """An HTTP body minus its timing field (the only nondeterminism)."""
    payload = json.loads(body)
    payload.get("stats", {}).pop("elapsed_ms", None)
    return payload


@pytest.fixture(scope="module")
def plain_service(example_indexes):
    return SearchService(example_indexes)


@pytest.fixture(scope="module")
def pooled_service(example_indexes):
    service = PooledSearchService(example_indexes, processes=2)
    yield service
    service.close()


@pytest.fixture(scope="module")
def pooled_sharded_service(example_indexes):
    service = PooledSearchService(
        example_indexes, processes=2, num_shards=3
    )
    yield service
    service.close()


@pytest.fixture()
def private_bundle():
    """A mutation-safe bundle for lifecycle/failover tests."""
    graph, _nodes = example_graph_with_nodes()
    return build_indexes(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )


class TestDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_pooled_matches_plain(
        self, plain_service, pooled_service, algorithm
    ):
        for query in (QUERY, "software company", "database revenue"):
            expected = plain_service.search(query, k=4, algorithm=algorithm)
            served = pooled_service.search(query, k=4, algorithm=algorithm)
            assert fingerprint(served) == fingerprint(expected)
            assert not served.stats.from_result_cache

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_pooled_sharded_matches_plain(
        self, plain_service, pooled_sharded_service, algorithm
    ):
        for query in (QUERY, "software company"):
            expected = plain_service.search(query, k=4, algorithm=algorithm)
            served = pooled_sharded_service.search(
                query, k=4, algorithm=algorithm
            )
            assert fingerprint(served) == fingerprint(expected)
            if algorithm != "baseline":
                # The worker ran the inline scatter loop: shard counters
                # must flow back across the pipe.
                assert served.stats.shards_total == 3

    def test_seeded_sampling_crosses_the_pipe(
        self, plain_service, pooled_service
    ):
        # Sampled LETopK is NOT shardable (per-shard RNG streams would
        # diverge) but it IS poolable: the single seeded stream runs
        # whole inside one worker.
        params = dict(
            algorithm="linear_topk",
            sampling_rate=0.5,
            sampling_threshold=1.0,
            seed=11,
        )
        expected = plain_service.search(QUERY, k=4, **params)
        served = pooled_service.search(QUERY, k=4, **params)
        assert fingerprint(served) == fingerprint(expected)

    def test_result_cache_stays_in_the_parent(self, pooled_service):
        first = pooled_service.search("software company", k=3)
        again = pooled_service.search("software company", k=3)
        assert again.stats.from_result_cache
        assert fingerprint(again) == fingerprint(first)


class TestLifecycle:
    def test_pool_is_lazy_and_survives_close(self, private_bundle):
        service = PooledSearchService(private_bundle, processes=2)
        assert service.worker_snapshot() == []
        assert service.pool_info()["built"] is False
        service.search(QUERY, k=3)
        assert service.pool_info()["built"] is True
        assert service.stats.pool_rebuilds == 1
        rows = service.worker_snapshot()
        assert [row["worker"] for row in rows] == [0, 1]
        assert all(row["alive"] for row in rows)
        service.close()
        assert service.pool_info()["built"] is False
        # The service stays usable: the next execution forks afresh.
        result = service.search(QUERY, k=3, algorithm="linear_topk")
        assert result.num_answers > 0
        assert service.stats.pool_rebuilds == 2
        service.close()

    def test_version_bump_rebuilds_the_pool(self, private_bundle):
        service = PooledSearchService(private_bundle, processes=2)
        try:
            before = service.search("company", k=5)
            first_pool = service._pool
            assert first_pool.store_version == private_bundle.store.version
            add_entity(private_bundle, "Company", "Freshly Added Company")
            after = service.search("company", k=5)
            # New pool, pinned to the new version; the old workers are
            # gone — a stale snapshot can never be served.
            assert service._pool is not first_pool
            assert first_pool.closed
            assert (
                service._pool.store_version == private_bundle.store.version
            )
            assert service.stats.pool_rebuilds == 2
            # And the answers reflect the write.
            cold = SearchService(private_bundle).search("company", k=5)
            assert fingerprint(after) == fingerprint(cold)
            assert fingerprint(after) != fingerprint(before)
        finally:
            service.close()

    def test_batch_fork_is_rejected(self, pooled_service):
        with pytest.raises(SearchError, match="disabled"):
            pooled_service.search_many([QUERY], k=7, processes=2)

    def test_batch_threads_drive_the_pool(self, private_bundle):
        service = PooledSearchService(private_bundle, processes=2)
        try:
            queries = [QUERY, "software company", "database revenue"]
            results = service.search_many(queries, k=3, threads=2)
            plain = SearchService(private_bundle)
            for query, result in zip(queries, results):
                assert fingerprint(result) == fingerprint(
                    plain.search(query, k=3)
                )
        finally:
            service.close()

    def test_stats_self_describe_the_backend(
        self, pooled_service, pooled_sharded_service
    ):
        assert pooled_service.stats.execution_backend == "fork-pool"
        assert pooled_service.stats.execution_workers == 2
        assert "backend fork-pool x2" in pooled_service.stats.format()
        assert (
            pooled_sharded_service.stats.execution_backend
            == "fork-pool+sharded"
        )

    def test_pool_rejects_bad_sizes(self, private_bundle):
        with pytest.raises(SearchError, match="processes"):
            PooledSearchService(private_bundle, processes=0)
        with pytest.raises(SearchError, match="num_workers"):
            ForkWorkerPool(private_bundle, 0)


class TestFailover:
    def test_sigkilled_worker_fails_over_and_respawns(self, private_bundle):
        service = PooledSearchService(private_bundle, processes=2)
        try:
            expected = fingerprint(
                SearchService(private_bundle).search(QUERY, k=3)
            )
            service.search(QUERY, k=3)  # builds the pool
            for slot in range(2):
                service.kill_worker(slot)
            # Both workers are dead; both requests must still answer
            # correctly (inline failover) and heal the pool.
            recovered = service.search(
                QUERY, k=3, algorithm="linear_topk"
            )
            assert recovered.num_answers > 0
            again = service.execute(service.plan(QUERY, k=3))
            assert fingerprint(again) == expected
            assert service.stats.worker_failovers >= 1
            assert service._pool.alive_workers() == 2
            rows = service.worker_snapshot()
            assert sum(row["respawns"] for row in rows) >= 1
        finally:
            service.close()

    def test_armed_mid_request_death_fails_over(self, private_bundle):
        service = PooledSearchService(private_bundle, processes=1)
        try:
            expected = fingerprint(
                SearchService(private_bundle).search(QUERY, k=3)
            )
            service.search(QUERY, k=3)
            service.arm_exit(0)
            # The worker dies after *receiving* this plan — a genuine
            # mid-request death, detected while the parent awaits the
            # reply.
            result = service.execute(service.plan(QUERY, k=3))
            assert fingerprint(result) == expected
            assert service.stats.worker_failovers == 1
            assert service._pool.alive_workers() == 1
        finally:
            service.close()


class TestPooledHttp:
    @pytest.fixture()
    def pooled_server(self, example_indexes):
        service = PooledSearchService(example_indexes, processes=2)
        thread = start_http_server(service, max_queue=16, workers=2)
        yield thread, service
        thread.stop()

    def test_responses_match_threaded_backend(
        self, pooled_server, example_indexes
    ):
        thread, _service = pooled_server
        plain = start_http_server(
            SearchService(example_indexes), max_queue=16, workers=2
        )
        try:
            for path in (
                f"/search?q={QUERY.replace(' ', '+')}&k=3",
                f"/search?q={QUERY.replace(' ', '+')}&k=2"
                "&include_rows=1&max_rows=5",
                "/search?q=software+company&k=4&algorithm=linear_full"
                "&include_rows=1",
            ):
                status, body, _ = get(thread.address, path)
                ref_status, ref_body, _ = get(plain.address, path)
                assert (status, ref_status) == (200, 200)
                assert body_fingerprint(body) == body_fingerprint(ref_body)
        finally:
            plain.stop()

    def test_metrics_expose_pool_gauges(self, pooled_server):
        thread, _service = pooled_server
        get(thread.address, f"/search?q={QUERY.replace(' ', '+')}&k=3")
        _status, body, _ = get(thread.address, "/metrics")
        text = body.decode()
        assert 'repro_execution_workers{backend="fork-pool"} 2' in text
        assert 'repro_pool_worker_alive{worker="0"} 1' in text
        assert 'repro_pool_worker_alive{worker="1"} 1' in text
        assert "repro_pool_worker_executed_total" in text
        assert "repro_pool_worker_respawns_total" in text
        assert "repro_worker_failovers_total 0" in text
        assert "repro_pool_rebuilds_total 1" in text
        assert "repro_pool_free_slots 2" in text

    def test_http_failover_and_drain_with_dead_worker(self, pooled_server):
        # Satellite: SIGKILL an HTTP fork worker mid-request — the
        # request answers correctly via inline failover, the worker
        # respawns, worker_failovers increments, and graceful drain
        # completes with a (second) dead worker left in the pool.
        thread, service = pooled_server
        plain = start_http_server(
            SearchService(service.indexes), max_queue=16, workers=2
        )
        status, _body, _ = get(
            thread.address, f"/search?q={QUERY.replace(' ', '+')}&k=3"
        )
        assert status == 200
        service.arm_exit(0)
        service.kill_worker(1)
        try:
            # Distinct plans dodge the parent's result cache, so these
            # executions must cross (and heal) the pool.
            for k in (4, 5):
                fresh = f"/search?q={QUERY.replace(' ', '+')}&k={k}"
                status, body, _ = get(thread.address, fresh)
                ref_status, ref_body, _ = get(plain.address, fresh)
                assert (status, ref_status) == (200, 200)
                assert body_fingerprint(body) == body_fingerprint(ref_body)
        finally:
            plain.stop()
        _status, metrics, _ = get(thread.address, "/metrics")
        text = metrics.decode()
        failovers = [
            line for line in text.splitlines()
            if line.startswith("repro_worker_failovers_total")
        ]
        assert failovers and float(failovers[0].split()[-1]) >= 1
        assert service._pool.alive_workers() == 2
        # Leave a dead worker behind and drain: stop() must complete.
        service.kill_worker(0)
        post(thread.address, "/admin/invalidate")  # exercise drain paths
        # thread.stop() runs in the fixture finalizer; reaching it with a
        # dead worker in the pool IS the assertion.


class TestPooledShardedHttp:
    def test_composed_backend_serves_and_counts_shards(
        self, example_indexes
    ):
        service = PooledSearchService(
            example_indexes, processes=2, num_shards=3
        )
        plain = SearchService(example_indexes)
        thread = start_http_server(service, max_queue=16, workers=2)
        reference = start_http_server(plain, max_queue=16, workers=2)
        try:
            path = f"/search?q={QUERY.replace(' ', '+')}&k=3&include_rows=1"
            status, body, _ = get(thread.address, path)
            ref_status, ref_body, _ = get(reference.address, path)
            assert (status, ref_status) == (200, 200)
            # Work counters legitimately differ across spines (shard
            # skipping prunes patterns); the answers are the contract.
            served, ref = body_fingerprint(body), body_fingerprint(ref_body)
            assert served["stats"]["shards_total"] == 3
            served.pop("stats"), ref.pop("stats")
            assert served == ref
            _status, metrics, _ = get(thread.address, "/metrics")
            text = metrics.decode()
            assert (
                'repro_execution_workers{backend="fork-pool+sharded"} 2'
                in text
            )
            assert 'repro_search_counter_total{counter="shards_total"} 3' in text
        finally:
            thread.stop()
            reference.stop()
