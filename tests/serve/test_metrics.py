"""Latency quantiles, rate windows, and Prometheus text rendering."""

import threading

from repro.search.result import SearchStats
from repro.serve.metrics import (
    LatencyRecorder,
    MetricFamily,
    RateWindow,
    ServerMetrics,
    percentile,
    render_prometheus,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([3.0], 0.5) == 3.0
        assert percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 51.0  # rank round(0.5 * 99)
        assert percentile(values, 1.0) == 100.0


class TestLatencyRecorder:
    def test_count_and_sum_are_exact(self):
        recorder = LatencyRecorder(window=4)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            recorder.record(value)
        assert recorder.count == 5
        assert abs(recorder.total_seconds - 1.5) < 1e-12

    def test_quantiles_use_the_window_only(self):
        recorder = LatencyRecorder(window=3)
        for value in (9.0, 0.1, 0.2, 0.3):  # 9.0 evicted
            recorder.record(value)
        quantiles = recorder.quantiles()
        assert quantiles[0.99] == 0.3

    def test_snapshot_shape(self):
        recorder = LatencyRecorder()
        recorder.record(0.25)
        snapshot = recorder.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["p50_seconds"] == 0.25
        assert snapshot["p99_seconds"] == 0.25


class TestRateWindow:
    def test_rate_over_injected_clock(self):
        window = RateWindow(window_seconds=10.0)
        for tick in range(5):
            window.tick(now=100.0 + tick)
        assert abs(window.rate(now=104.0) - 5 / 4.0) < 1e-9

    def test_old_ticks_trimmed(self):
        window = RateWindow(window_seconds=2.0)
        window.tick(now=100.0)
        window.tick(now=105.0)
        assert window.rate(now=105.0) > 0
        assert window.rate(now=200.0) == 0.0


class TestServerMetrics:
    def test_observe_and_inc(self):
        metrics = ServerMetrics()
        metrics.observe_response("/search", 200)
        metrics.observe_response("/search", 503)
        metrics.inc("requests_shed")
        assert metrics.requests_total[("/search", "200")] == 1
        assert metrics.requests_total[("/search", "503")] == 1
        assert metrics.requests_shed == 1

    def test_absorb_search_stats(self):
        metrics = ServerMetrics()
        stats = SearchStats(algorithm="pattern_enum")
        stats.patterns_checked = 7
        stats.candidate_roots = 3
        metrics.absorb_search_stats(stats)
        metrics.absorb_search_stats(stats)
        assert metrics.search_counters["patterns_checked"] == 14
        assert metrics.search_counters["candidate_roots"] == 6

    def test_threaded_increments_are_exact(self):
        metrics = ServerMetrics()
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(500):
                metrics.inc("requests_coalesced")
                metrics.observe_response("/search", 200)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.requests_coalesced == 8 * 500
        assert metrics.requests_total[("/search", "200")] == 8 * 500


class TestRenderPrometheus:
    def test_families_and_labels(self):
        families = [
            MetricFamily("up", "gauge", "Liveness.").add({}, 1),
            MetricFamily("req", "counter", "Requests.")
            .add({"status": "200", "endpoint": "/s"}, 3)
            .add({"status": "503", "endpoint": "/s"}, 1),
        ]
        text = render_prometheus(families)
        assert "# HELP up Liveness." in text
        assert "# TYPE up gauge" in text
        assert "up 1" in text
        # Labels render sorted by name.
        assert 'req{endpoint="/s",status="200"} 3' in text
        assert 'req{endpoint="/s",status="503"} 1' in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        family = MetricFamily("m", "counter", "h").add(
            {"q": 'say "hi"\nplease\\now'}, 1
        )
        text = render_prometheus([family])
        assert r'm{q="say \"hi\"\nplease\\now"} 1' in text

    def test_float_values_keep_precision(self):
        value = 0.1234567890123456789
        family = MetricFamily("m", "gauge", "h").add({}, value)
        rendered = render_prometheus([family]).splitlines()[-1]
        assert float(rendered.split()[-1]) == value
