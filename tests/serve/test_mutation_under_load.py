"""Mutation under concurrent load: the delta overlay behind live serving.

The contract under test is the update-boundary oracle: every mutation
(``add_entity``) applies under one store-lock span, so any response a
concurrent reader observes must be bit-identical to the answer at *some*
update boundary — the state after 0, 1, ... or all mutations — never a
half-applied one.  A heap twin of the served bundle replays the same
mutation sequence step by step to enumerate those boundaries.

On top of that sit the serving-tier consequences:

* mapped stores never thaw — writes land in the overlay, and
  ``MappedPostingStore.backed_stores_thawed`` stays flat;
* the fork pool rebuilds on the version bump, so workers inherit the
  overlay copy-on-write and never serve a stale snapshot;
* ``compact()`` folds the overlay into a fresh generation atomically
  re-mapped in place, and the *next* pool rebuild forks from the
  re-mapped pages (the sharded pool adopts the compaction's partition
  instead of re-partitioning on the heap).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.errors import SearchError
from repro.datasets.example import EXAMPLE_NORMALIZER, example_graph_with_nodes
from repro.index.builder import build_indexes
from repro.index.incremental import add_entity
from repro.index.mmapstore import MappedPostingStore
from repro.index.serialize import save_indexes
from repro.kg.pagerank import uniform_scores
from repro.search.service import SearchService
from repro.search.sharding import ShardedSearchService
from repro.serve import start_http_server
from repro.serve.pool import PooledSearchService

from tests.serve.test_http import get

QUERIES = ("database software company revenue", "software company", "database")

#: One boundary per step: entities named after workload words, so every
#: mutation moves at least one served posting list.
MUTATION_WORDS = ("database", "software", "revenue", "company", "database", "software")


def build_heap_twin():
    graph, _nodes = example_graph_with_nodes()
    return build_indexes(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )


def engine_fingerprint(result):
    """The service-side answer shape, JSON-round-trip comparable."""
    return (
        [answer.score for answer in result.answers],
        [tuple(answer.pattern_key) for answer in result.answers],
        [answer.num_subtrees for answer in result.answers],
    )


def http_fingerprint(body: bytes):
    payload = json.loads(body)
    return (
        [answer["score"] for answer in payload["answers"]],
        [tuple(answer["pattern_key"]) for answer in payload["answers"]],
        [answer["num_subtrees"] for answer in payload["answers"]],
    )


def boundary_oracles(k=4):
    """``oracle[query] = [fingerprint after 0..len(MUTATION_WORDS) steps]``.

    Computed on a heap twin so the mapped bundle under test never feeds
    its own oracle.
    """
    twin = build_heap_twin()
    service = SearchService(twin)
    oracle = {query: [] for query in QUERIES}
    for step in range(len(MUTATION_WORDS) + 1):
        if step:
            add_entity(twin, "company", MUTATION_WORDS[step - 1])
            service.invalidate()
        for query in QUERIES:
            oracle[query].append(
                engine_fingerprint(service.search(query, k=k))
            )
    service.close()
    return oracle


@pytest.fixture()
def mapped_path(tmp_path):
    path = tmp_path / "example.repro"
    save_indexes(build_heap_twin(), path)
    return path


def drive_mutations_under_load(service, server_address, k=4):
    """Writer thread streams the mutation plan while HTTP readers hammer.

    Returns ``(observed, final)``: every captured ``(query, fingerprint,
    step_floor)`` triple and the post-quiescence fingerprints.
    """
    oracle = boundary_oracles(k=k)
    steps_done = 0
    stop = threading.Event()
    observed = []
    errors = []

    def writer():
        nonlocal steps_done
        for word in MUTATION_WORDS:
            time.sleep(0.02)
            add_entity(service.indexes, "company", word)
            service.invalidate()
            steps_done += 1
        stop.set()

    def reader():
        index = 0
        while not stop.is_set() or index == 0:
            query = QUERIES[index % len(QUERIES)]
            index += 1
            status, body, _ = get(
                server_address,
                f"/search?q={query.replace(' ', '+')}&k={k}",
            )
            if status != 200:
                errors.append(status)
                continue
            observed.append((query, http_fingerprint(body)))

    writer_thread = threading.Thread(target=writer)
    reader_threads = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    writer_thread.join()
    for thread in reader_threads:
        thread.join()

    assert not errors, f"non-200 responses under mutation load: {errors}"
    assert steps_done == len(MUTATION_WORDS)
    for query, fingerprint in observed:
        assert fingerprint in oracle[query], (
            f"response for {query!r} matches no update boundary"
        )

    # Quiescence: after the last invalidation every answer must sit at
    # the *final* boundary — served writes are durable, not just atomic.
    final = {}
    for query in QUERIES:
        status, body, _ = get(
            server_address, f"/search?q={query.replace(' ', '+')}&k={k}"
        )
        assert status == 200
        final[query] = http_fingerprint(body)
        assert final[query] == oracle[query][-1]
    return observed, final


class TestMutationUnderLoad:
    def test_pooled_http_matches_update_boundaries(self, mapped_path):
        thawed_before = MappedPostingStore.backed_stores_thawed
        service = PooledSearchService.from_file(mapped_path, processes=2)
        server = start_http_server(service, max_queue=64, workers=2)
        try:
            observed, _ = drive_mutations_under_load(
                service, server.address
            )
            assert observed
            status, body, _ = get(server.address, "/metrics")
            assert status == 200
            # Every version bump forces a re-fork: the workers that
            # answered the final boundary were built after the writes.
            assert b"repro_pool_rebuilds_total" in body
            assert service.indexes.store.overlay_postings > 0
        finally:
            server.stop()
        assert MappedPostingStore.backed_stores_thawed == thawed_before

    def test_sharded_http_matches_update_boundaries(self, mapped_path):
        thawed_before = MappedPostingStore.backed_stores_thawed
        service = ShardedSearchService.from_file(mapped_path, num_shards=2)
        server = start_http_server(service, max_queue=64, workers=2)
        try:
            drive_mutations_under_load(service, server.address)
            assert service.indexes.store.overlay_postings > 0
        finally:
            server.stop()
        assert MappedPostingStore.backed_stores_thawed == thawed_before


class TestCompactionUnderServing:
    def test_pool_rebuilds_from_remapped_generation(self, mapped_path):
        thawed_before = MappedPostingStore.backed_stores_thawed
        twin = build_heap_twin()
        service = PooledSearchService.from_file(
            mapped_path, processes=2, num_shards=2
        )
        try:
            for word in MUTATION_WORDS:
                add_entity(service.indexes, "company", word)
                add_entity(twin, "company", word)
            service.invalidate()
            outcome = service.compact()
            # The compaction wrote a 2-shard file and handed the service
            # a live mapped partition: the next rebuild adopts it rather
            # than re-partitioning a heap copy.
            assert outcome["generation"] == 1
            assert outcome["sharded"] is not None
            assert service._preloaded is outcome["sharded"]
            assert service.indexes.store.generation == 1
            assert service.indexes.store.overlay_postings == 0

            oracle = SearchService(twin)
            for query in QUERIES:
                expected = engine_fingerprint(oracle.search(query, k=4))
                served = engine_fingerprint(service.search(query, k=4))
                assert served == expected
            oracle.close()
        finally:
            service.close()
        assert MappedPostingStore.backed_stores_thawed == thawed_before

    def test_compact_requires_a_file_backed_service(self, example_indexes):
        service = SearchService(example_indexes)
        with pytest.raises(SearchError, match="target path"):
            service.compact()

    def test_auto_compact_fires_on_invalidation_tick(self, mapped_path):
        service = SearchService.from_file(
            mapped_path, auto_compact_ratio=1e-9
        )
        try:
            add_entity(service.indexes, "company", "database")
            assert service.stats.compactions == 0
            service.invalidate()
            assert service.stats.compactions == 1
            assert service.indexes.store.generation == 1
            assert service.indexes.store.overlay_postings == 0
            assert "1 compactions" in service.stats.format()
        finally:
            service.close()

    def test_auto_compact_stays_quiet_below_the_ratio(self, mapped_path):
        service = SearchService.from_file(
            mapped_path, auto_compact_ratio=0.5
        )
        try:
            add_entity(service.indexes, "company", "database")
            service.invalidate()
            assert service.stats.compactions == 0
            assert service.indexes.store.generation == 0
        finally:
            service.close()
