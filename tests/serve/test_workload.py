"""The JSONL workload format: round trips, validation, Zipf streams."""

import pytest

from repro.serve.workload import (
    WorkloadError,
    WorkloadRequest,
    load_workload,
    requests_from_queries,
    save_workload,
    zipf_workload,
)


class TestWorkloadRequest:
    def test_defaults(self):
        request = WorkloadRequest(query="software company")
        assert request.kind == "search"
        assert not request.is_mutation
        assert not request.has_overrides()

    def test_overrides_detected(self):
        assert WorkloadRequest(query="x", k=3).has_overrides()
        assert WorkloadRequest(query="x", algorithm="letopk").has_overrides()
        assert WorkloadRequest(
            query="x", params=(("sampling_rate", 0.5),)
        ).has_overrides()

    def test_invalidate_tick(self):
        tick = WorkloadRequest(kind="invalidate")
        assert tick.is_mutation
        assert tick.to_json() == {"kind": "invalidate"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError, match="unknown request kind"):
            WorkloadRequest(query="x", kind="write")

    def test_search_needs_query(self):
        with pytest.raises(WorkloadError, match="non-empty query"):
            WorkloadRequest()

    def test_json_round_trip(self):
        request = WorkloadRequest(
            query="movies gibson",
            k=7,
            algorithm="letopk",
            params=(("sampling_rate", 0.5), ("seed", 3)),
        )
        assert WorkloadRequest.from_json(request.to_json()) == request

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(WorkloadError, match="unknown fields"):
            WorkloadRequest.from_json({"query": "x", "wat": 1})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(WorkloadError, match="expected an object"):
            WorkloadRequest.from_json(["x"])

    def test_from_json_rejects_non_dict_params(self):
        with pytest.raises(WorkloadError, match="'params' must be"):
            WorkloadRequest.from_json({"query": "x", "params": [1]})


class TestFiles:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        requests = [
            WorkloadRequest(query="software company", k=5),
            WorkloadRequest(kind="invalidate"),
            WorkloadRequest(
                query="database revenue",
                algorithm="letopk",
                params=(("sampling_rate", 0.5),),
            ),
        ]
        assert save_workload(path, requests) == 3
        assert load_workload(path) == requests

    def test_load_skips_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        path.write_text(
            '# header comment\n'
            '\n'
            '{"query": "software company"}\n'
        )
        assert load_workload(path) == [
            WorkloadRequest(query="software company")
        ]

    def test_load_reports_line_numbers(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        path.write_text('{"query": "ok"}\nnot json\n')
        with pytest.raises(WorkloadError, match="line 2"):
            load_workload(path)

    def test_load_empty_errors(self, tmp_path):
        path = tmp_path / "workload.jsonl"
        path.write_text("# nothing\n")
        with pytest.raises(WorkloadError, match="no requests"):
            load_workload(path)


class TestStreams:
    def test_requests_from_queries_joins_tuples(self):
        requests = requests_from_queries(
            [("software", "company"), "database revenue"], k=3
        )
        assert [r.query for r in requests] == [
            "software company", "database revenue"
        ]
        assert all(r.k == 3 for r in requests)

    def test_zipf_workload_is_seeded(self):
        queries = ["a", "b", "c", "d"]
        first = zipf_workload(queries, 50, seed=9)
        again = zipf_workload(queries, 50, seed=9)
        other = zipf_workload(queries, 50, seed=10)
        assert first == again
        assert first != other
        assert len(first) == 50

    def test_zipf_workload_is_skewed(self):
        queries = [f"q{i}" for i in range(8)]
        stream = zipf_workload(queries, 400, alpha=0.9, seed=1)
        counts = {}
        for request in stream:
            counts[request.query] = counts.get(request.query, 0) + 1
        # Zipf popularity: the head query dominates the tail.
        assert max(counts.values()) > 3 * min(counts.values())

    def test_zipf_workload_invalidate_every(self):
        stream = zipf_workload(["a", "b"], 20, invalidate_every=5, seed=0)
        ticks = [
            index for index, request in enumerate(stream)
            if request.is_mutation
        ]
        assert ticks == [4, 9, 14, 19]
