"""HTTP/REPL parameter parsing and algorithm-applicability validation."""

import pytest

from repro.serve.params import (
    ParamError,
    describe_inapplicable,
    inapplicable_params,
    parse_search_params,
    split_applicable_params,
)


def qs(**kwargs):
    """parse_qs-shaped mapping: every value a one-element list."""
    return {name: [str(value)] for name, value in kwargs.items()}


class TestApplicability:
    def test_accepted_params_pass(self):
        assert inapplicable_params("letopk", {"sampling_rate": 0.5}) == []
        assert inapplicable_params("pattern_enum", {"prune": False}) == []

    def test_inapplicable_params_named(self):
        assert inapplicable_params(
            "pattern_enum",
            {"sampling_rate": 0.5, "sampling_threshold": 10.0},
        ) == ["sampling_rate", "sampling_threshold"]

    def test_none_means_default_algorithm(self):
        # The default algorithm is pattern_enum: sampling does not apply.
        assert inapplicable_params(None, {"sampling_rate": 0.5}) == [
            "sampling_rate"
        ]

    def test_aliases_resolve(self):
        # 'linear' is an alias of the sampling family.
        assert inapplicable_params("linear", {"sampling_rate": 0.5}) == []

    def test_split_keeps_applicable(self):
        kept, dropped = split_applicable_params(
            "pattern_enum", {"prune": False, "sampling_rate": 0.5}
        )
        assert kept == {"prune": False}
        assert dropped == ["sampling_rate"]

    def test_describe_names_algorithm_and_accepted(self):
        text = describe_inapplicable("pattern_enum", ["sampling_rate"])
        assert "'pattern_enum'" in text
        assert "sampling_rate" in text
        assert "keep_subtrees" in text  # the accepted list


class TestParseSearchParams:
    def test_minimal(self):
        request = parse_search_params(qs(q="software company"))
        assert request.query == "software company"
        assert request.k is None
        assert request.algorithm is None
        assert request.params == {}
        assert request.include_rows is False
        assert request.max_rows == 10

    def test_full(self):
        request = parse_search_params(
            qs(
                q="movies gibson",
                k=7,
                algorithm="letopk",
                sampling_rate=0.25,
                sampling_threshold=100,
                seed=3,
                deadline_ms=250,
                include_rows="true",
                max_rows=2,
            )
        )
        assert request.k == 7
        assert request.algorithm == "letopk"
        assert request.params == {
            "sampling_rate": 0.25,
            "sampling_threshold": 100.0,
            "seed": 3,
        }
        assert request.deadline_ms == 250.0
        assert request.include_rows is True
        assert request.max_rows == 2
        assert request.response_key() == (True, 2)

    def test_missing_query(self):
        with pytest.raises(ParamError, match="missing required"):
            parse_search_params({})
        with pytest.raises(ParamError, match="missing required"):
            parse_search_params(qs(q="   "))

    def test_unknown_parameter(self):
        with pytest.raises(ParamError, match="unknown parameter 'wat'"):
            parse_search_params(qs(q="x", wat=1))

    def test_repeated_parameter(self):
        with pytest.raises(ParamError, match="given 2 times"):
            parse_search_params({"q": ["x"], "k": ["1", "2"]})

    def test_unknown_algorithm(self):
        with pytest.raises(Exception, match="quantum"):
            parse_search_params(qs(q="x", algorithm="quantum"))

    def test_inapplicable_param_rejected(self):
        with pytest.raises(ParamError, match="does not accept"):
            parse_search_params(
                qs(q="x", algorithm="pattern_enum", sampling_rate=0.5)
            )

    def test_type_errors(self):
        with pytest.raises(ParamError, match="wants an integer"):
            parse_search_params(qs(q="x", k="many"))
        with pytest.raises(ParamError, match="wants a number"):
            parse_search_params(qs(q="x", deadline_ms="soon"))
        with pytest.raises(ParamError, match="wants a boolean"):
            parse_search_params(qs(q="x", include_rows="maybe"))
        with pytest.raises(ParamError, match="must not be NaN"):
            parse_search_params(
                qs(q="x", algorithm="letopk", sampling_rate="nan")
            )

    def test_range_checks(self):
        with pytest.raises(ParamError, match="'k' must be >= 1"):
            parse_search_params(qs(q="x", k=0))
        with pytest.raises(ParamError, match="'deadline_ms' must be > 0"):
            parse_search_params(qs(q="x", deadline_ms=0))
        with pytest.raises(ParamError, match="'max_rows' must be >= 0"):
            parse_search_params(qs(q="x", max_rows=-1))

    def test_seed_accepts_none_spellings(self):
        request = parse_search_params(
            qs(q="x", algorithm="letopk", seed="none")
        )
        assert request.params == {"seed": None}
        request = parse_search_params(qs(q="x", algorithm="letopk", seed=5))
        assert request.params == {"seed": 5}

    def test_bool_spellings(self):
        for raw, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ):
            request = parse_search_params(qs(q="x", include_rows=raw))
            assert request.include_rows is expected
