"""The asyncio HTTP tier: routing, coalescing, admission, deadlines.

Each test hosts a real server on a background event loop
(:class:`ServerThread`) over the worked example's indexes and talks to
it with ``http.client`` over real sockets.  Dispatch-race tests get
determinism by wrapping ``service.search`` with an Event-gated slow
search: the worker blocks *inside* execution until the test releases it,
so "requests arriving while the leader is in flight" is a controlled
fact, not a timing hope.
"""

import http.client
import json
import threading

import pytest

from repro.search.engine import TableAnswerEngine
from repro.search.service import SearchService
from repro.serve import start_http_server

QUERY = "database software company revenue"


def get(address, path, timeout=30):
    host, _, port = address.partition(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    conn.request("GET", path)
    response = conn.getresponse()
    body = response.read()
    headers = dict(response.getheaders())
    conn.close()
    return response.status, body, headers


def post(address, path, timeout=30):
    host, _, port = address.partition(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    conn.request("POST", path)
    response = conn.getresponse()
    body = response.read()
    conn.close()
    return response.status, body


class GatedSearch:
    """Wraps ``service.search`` so executions block until released."""

    def __init__(self, service):
        self.calls = []
        self.started = threading.Event()
        self.release = threading.Event()
        self._real = service.search
        service.search = self._slow  # instance attribute shadows the method

    def _slow(self, *args, **kwargs):
        plan = kwargs.get("plan")
        self.calls.append(plan.k if plan is not None else None)
        self.started.set()
        assert self.release.wait(timeout=30), "test never released the gate"
        return self._real(*args, **kwargs)


@pytest.fixture()
def service(example_indexes):
    return SearchService(example_indexes)


@pytest.fixture()
def server(service):
    thread = start_http_server(service, max_queue=8, workers=2)
    yield thread
    thread.stop()


class TestRouting:
    def test_search_matches_cold_engine(self, server, example_indexes):
        status, body, _ = get(
            server.address, f"/search?q={QUERY.replace(' ', '+')}&k=3"
        )
        assert status == 200
        payload = json.loads(body)
        snap = example_indexes.snapshot()
        cold = TableAnswerEngine(snap.graph, indexes=snap).search(
            QUERY.split(), k=3
        )
        assert [a["score"] for a in payload["answers"]] == cold.scores()
        assert [
            tuple(a["pattern_key"]) for a in payload["answers"]
        ] == cold.pattern_keys()
        assert [a["num_subtrees"] for a in payload["answers"]] == [
            answer.num_subtrees for answer in cold.answers
        ]
        assert payload["algorithm"] == "pattern_enum"
        assert payload["k"] == 3

    def test_include_rows_renders_tables(self, server):
        status, body, _ = get(
            server.address,
            f"/search?q={QUERY.replace(' ', '+')}&k=1"
            "&include_rows=1&max_rows=2",
        )
        assert status == 200
        answer = json.loads(body)["answers"][0]
        assert answer["columns"]
        assert len(answer["rows"]) <= 2

    def test_bad_request_400(self, server):
        for path in (
            "/search",                                   # missing q
            "/search?q=x&k=0",                           # bad range
            "/search?q=x&wat=1",                         # unknown param
            "/search?q=x&algorithm=quantum",             # unknown algorithm
            "/search?q=x&algorithm=pattern_enum&sampling_rate=0.5",
        ):
            status, body, _ = get(server.address, path)
            assert status == 400, path
            assert json.loads(body)["status"] == 400

    def test_unknown_route_404(self, server):
        status, body, _ = get(server.address, "/nope")
        assert status == 404

    def test_wrong_method_405(self, server):
        status, _ = post(server.address, "/search?q=x")
        assert status == 405
        status, _, _ = get(server.address, "/admin/invalidate")
        assert status == 405

    def test_healthz(self, server):
        status, body, _ = get(server.address, "/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

    def test_admin_invalidate_flushes_caches(self, server, service):
        get(server.address, f"/search?q={QUERY.replace(' ', '+')}")
        status, body = post(server.address, "/admin/invalidate")
        assert status == 200
        assert json.loads(body)["invalidated"] is True
        assert service.stats.invalidations == 1

    def test_metrics_exposes_counters(self, server):
        get(server.address, f"/search?q={QUERY.replace(' ', '+')}")
        get(server.address, "/search?q=x&wat=1")
        status, body, headers = get(server.address, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert (
            'repro_http_requests_total{endpoint="/search",status="200"} 1'
            in text
        )
        assert (
            'repro_http_requests_total{endpoint="/search",status="400"} 1'
            in text
        )
        assert "repro_http_qps" in text
        assert "repro_http_queue_depth 0" in text
        assert 'repro_http_request_latency_seconds{quantile="0.99"}' in text
        assert 'repro_cache_hits_total{tier="result"} 0' in text
        assert 'repro_cache_misses_total{tier="result"} 1' in text
        assert (
            'repro_search_counter_total{counter="patterns_checked"}' in text
        )


class TestCoalescing:
    def test_n_waiters_one_execution_identical_bytes(self, example_indexes):
        service = SearchService(example_indexes)
        gate = GatedSearch(service)
        server = start_http_server(service, max_queue=16, workers=4)
        try:
            results = []
            lock = threading.Lock()

            def fetch():
                status, body, headers = get(server.address, path)
                with lock:
                    results.append((status, body, headers))

            path = f"/search?q={QUERY.replace(' ', '+')}&k=3"
            leader = threading.Thread(target=fetch)
            leader.start()
            assert gate.started.wait(timeout=30)
            # The leader is now blocked inside execution; every follower
            # from here on MUST coalesce onto its in-flight future.
            followers = [threading.Thread(target=fetch) for _ in range(5)]
            for thread in followers:
                thread.start()
            deadline_metrics = server.server.metrics
            for _ in range(1000):
                if deadline_metrics.requests_coalesced >= 5:
                    break
                threading.Event().wait(0.01)
            assert deadline_metrics.requests_coalesced == 5
            gate.release.set()
            leader.join(timeout=30)
            for thread in followers:
                thread.join(timeout=30)

            assert len(gate.calls) == 1  # one execution for six requests
            assert len(results) == 6
            assert {status for status, _, _ in results} == {200}
            bodies = {body for _, body, _ in results}
            assert len(bodies) == 1  # bit-identical bytes for everyone
            coalesced = [
                headers.get("X-Coalesced")
                for _, _, headers in results
            ].count("1")
            assert coalesced == 5
        finally:
            gate.release.set()
            server.stop()

    def test_different_rendering_does_not_coalesce(self, example_indexes):
        # Same plan, different max_rows: responses must not share bytes.
        service = SearchService(example_indexes)
        gate = GatedSearch(service)
        server = start_http_server(service, max_queue=16, workers=4)
        try:
            results = {}

            def fetch(name, path):
                results[name] = get(server.address, path)

            base = f"/search?q={QUERY.replace(' ', '+')}&k=2&include_rows=1"
            first = threading.Thread(
                target=fetch, args=("a", base + "&max_rows=1")
            )
            first.start()
            assert gate.started.wait(timeout=30)
            second = threading.Thread(
                target=fetch, args=("b", base + "&max_rows=5")
            )
            second.start()
            # Give the second request time to reach dispatch, then let
            # both executions run.
            gate.release.set()
            first.join(timeout=30)
            second.join(timeout=30)
            assert len(gate.calls) == 2  # distinct rendering: no sharing
            rows_a = json.loads(results["a"][1])["answers"][0]["rows"]
            rows_b = json.loads(results["b"][1])["answers"][0]["rows"]
            assert len(rows_a) == 1
            assert len(rows_b) > 1
        finally:
            gate.release.set()
            server.stop()


class TestAdmission:
    def test_queue_fills_fifo_then_sheds(self, example_indexes):
        service = SearchService(example_indexes)
        gate = GatedSearch(service)
        server = start_http_server(service, max_queue=2, workers=1)
        try:
            results = []
            lock = threading.Lock()

            def fetch(k):
                status, body, _ = get(
                    server.address,
                    f"/search?q={QUERY.replace(' ', '+')}&k={k}",
                )
                with lock:
                    results.append((k, status))

            # k distinguishes the plans, so nothing coalesces.
            first = threading.Thread(target=fetch, args=(1,))
            first.start()
            assert gate.started.wait(timeout=30)  # occupies the worker
            second = threading.Thread(target=fetch, args=(2,))
            second.start()
            for _ in range(1000):  # admitted: executing + queued == 2
                if server.server._admitted == 2:
                    break
                threading.Event().wait(0.01)
            assert server.server._admitted == 2

            status, body, _ = get(  # third: queue full -> shed
                server.address, f"/search?q={QUERY.replace(' ', '+')}&k=3"
            )
            assert status == 503
            assert "admission queue full" in json.loads(body)["message"]
            assert server.server.metrics.requests_shed == 1

            gate.release.set()
            first.join(timeout=30)
            second.join(timeout=30)
            assert {status for _, status in results} == {200}
            assert gate.calls == [1, 2]  # FIFO: admission order preserved
        finally:
            gate.release.set()
            server.stop()


class TestDeadlines:
    def test_expired_request_never_executes(self, example_indexes):
        service = SearchService(example_indexes)
        gate = GatedSearch(service)
        server = start_http_server(service, max_queue=8, workers=1)
        try:
            results = []

            def fetch_blocker():
                results.append(
                    get(
                        server.address,
                        f"/search?q={QUERY.replace(' ', '+')}&k=1",
                    )
                )

            blocker = threading.Thread(target=fetch_blocker)
            blocker.start()
            assert gate.started.wait(timeout=30)
            # Queued behind the blocker with a 30ms deadline: by the time
            # the worker frees up the deadline is long gone.
            deadline_result = {}

            def fetch_deadline():
                deadline_result["r"] = get(
                    server.address,
                    f"/search?q={QUERY.replace(' ', '+')}&k=2"
                    "&deadline_ms=30",
                )

            expiring = threading.Thread(target=fetch_deadline)
            expiring.start()
            threading.Event().wait(0.2)  # let the deadline lapse
            gate.release.set()
            blocker.join(timeout=30)
            expiring.join(timeout=30)

            status, body, _ = deadline_result["r"]
            assert status == 504
            assert "deadline expired" in json.loads(body)["message"]
            assert gate.calls == [1]  # the expired plan never executed
            assert server.server.metrics.requests_expired == 1
        finally:
            gate.release.set()
            server.stop()

    def test_server_default_deadline_applies(self, example_indexes):
        service = SearchService(example_indexes)
        gate = GatedSearch(service)
        server = start_http_server(
            service, max_queue=8, workers=1, default_deadline_ms=30
        )
        try:
            blocker_result = []

            def fetch_blocker():
                blocker_result.append(
                    get(
                        server.address,
                        f"/search?q={QUERY.replace(' ', '+')}&k=1",
                    )
                )

            blocker = threading.Thread(target=fetch_blocker)
            blocker.start()
            assert gate.started.wait(timeout=30)
            expired = {}

            def fetch_expired():
                expired["r"] = get(
                    server.address,
                    f"/search?q={QUERY.replace(' ', '+')}&k=2",
                )

            waiter = threading.Thread(target=fetch_expired)
            waiter.start()
            threading.Event().wait(0.2)
            gate.release.set()
            blocker.join(timeout=30)
            waiter.join(timeout=30)
            assert expired["r"][0] == 504
        finally:
            gate.release.set()
            server.stop()


class TestShutdown:
    def test_graceful_drain_completes_inflight_then_closes(
        self, example_indexes
    ):
        service = SearchService(example_indexes)
        closed = []
        real_close = service.close
        service.close = lambda: (closed.append(True), real_close())[1]
        gate = GatedSearch(service)
        server = start_http_server(service, max_queue=8, workers=1)
        result = {}

        def fetch():
            result["r"] = get(
                server.address, f"/search?q={QUERY.replace(' ', '+')}&k=1"
            )

        inflight = threading.Thread(target=fetch)
        inflight.start()
        assert gate.started.wait(timeout=30)
        releaser = threading.Timer(0.2, gate.release.set)
        releaser.start()
        server.stop(drain=True)  # blocks until drained
        inflight.join(timeout=30)
        assert result["r"][0] == 200  # the in-flight request completed
        assert closed == [True]  # the service was released afterwards

    def test_draining_server_sheds_new_requests(self, example_indexes):
        service = SearchService(example_indexes)
        server = start_http_server(service, max_queue=8, workers=1)
        server.server._draining = True
        status, body, _ = get(
            server.address, f"/search?q={QUERY.replace(' ', '+')}"
        )
        assert status == 503
        assert "draining" in json.loads(body)["message"]
        server.stop()


class TestShardedBackend:
    """Satellite contract: ``--http`` and ``--shards`` compose — the
    sharded service serves concurrent HTTP load bit-identically to the
    plain engine, and its shard counters flow into ``/metrics``."""

    def test_concurrent_sharded_responses_match_plain(self, example_indexes):
        from repro.search.sharding import ShardedSearchService

        sharded = ShardedSearchService(example_indexes, num_shards=3)
        plain = SearchService(example_indexes)
        server = start_http_server(sharded, max_queue=32, workers=4)
        reference = start_http_server(plain, max_queue=32, workers=4)
        paths = [
            f"/search?q={QUERY.replace(' ', '+')}&k={k}&include_rows=1"
            for k in (1, 2, 3)
        ] + ["/search?q=software+company&k=4"]
        try:
            results = {}

            def fetch(i, path):
                results[i] = (path, get(server.address, path))

            threads = [
                threading.Thread(target=fetch, args=(i, path))
                for i, path in enumerate(paths * 2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(results) == len(paths) * 2
            for path, (status, body, _headers) in results.values():
                ref_status, ref_body, _ = get(reference.address, path)
                assert (status, ref_status) == (200, 200)
                payload, ref = json.loads(body), json.loads(ref_body)
                payload["stats"] = ref["stats"] = None  # work counters differ
                assert payload == ref

            _status, metrics, _ = get(server.address, "/metrics")
            text = metrics.decode()
            assert 'repro_execution_workers{backend="sharded"} 3' in text
            shard_counters = {
                line.split()[0]: float(line.split()[1])
                for line in text.splitlines()
                if line.startswith('repro_search_counter_total{counter="shards')
            }
            assert (
                shard_counters['repro_search_counter_total{counter="shards_total"}']
                >= len(paths) * 3
            )
            assert 'counter="shards_skipped"' in text
        finally:
            server.stop()
            reference.stop()
