"""Experiment reporting utilities."""

import math

import pytest

from repro.bench.reporting import (
    ExperimentResult,
    decade_group,
    geometric_mean,
    summarize_ms,
)
from repro.bench.experiments import precision_at_k


class TestExperimentResult:
    def test_format(self):
        result = ExperimentResult("figX", "A title", ["a", "b"])
        result.add_row(1, 2.5)
        result.add_row("x", 0.001234)
        result.note("something")
        text = result.format()
        assert "figX" in text
        assert "A title" in text
        assert "2.5" in text
        assert "note: something" in text

    def test_markdown(self):
        result = ExperimentResult("figX", "A title", ["a"])
        result.add_row(7)
        markdown = result.to_markdown()
        assert markdown.startswith("### figX")
        assert "| a |" in markdown
        assert "| 7 |" in markdown

    def test_float_formatting(self):
        result = ExperimentResult("f", "t", ["v"])
        result.add_row(0.0)
        result.add_row(1234.5678)
        result.add_row(0.000123)
        assert result.rows[0] == ["0"]
        assert result.rows[1] == ["1.23e+03"]
        assert result.rows[2] == ["0.000123"]


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == 4.0
        assert geometric_mean([]) == 0.0

    def test_between_min_max(self):
        values = [0.5, 2.0, 8.0]
        mean = geometric_mean(values)
        assert min(values) <= mean <= max(values)


class TestSummarize:
    def test_summarize_ms(self):
        text = summarize_ms([0.001, 0.004, 0.016])
        assert text == "1.0/4.0/16.0"

    def test_empty(self):
        assert summarize_ms([]) == "-"


class TestDecadeGroup:
    @pytest.mark.parametrize(
        "count,expected",
        [(0, 1), (1, 10), (9, 10), (10, 100), (99, 100), (100, 1000),
         (12345, 100000)],
    )
    def test_groups(self, count, expected):
        assert decade_group(count) == expected


class TestPrecision:
    def test_full(self):
        assert precision_at_k([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 2, 3, 4], [1, 2, 9, 9]) == 0.5

    def test_empty_exact(self):
        assert precision_at_k([], [1]) == 1.0
