"""The run_all CLI and experiment plumbing."""

import pytest

from repro.bench import harness
from repro.bench.run_all import main


@pytest.fixture(autouse=True)
def clean_cache():
    harness.clear_cache()
    yield
    harness.clear_cache()


def test_run_single_experiment(capsys):
    code = main(["fig14_15"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig14_15" in out
    assert "pattern" in out


def test_markdown_output(tmp_path, capsys):
    target = tmp_path / "results.md"
    code = main(["fig14_15", "--markdown", str(target)])
    assert code == 0
    text = target.read_text()
    assert text.startswith("### fig14_15")
    assert "| rank | kind | answer |" in text


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["nope"])
