"""Bench harness: caching, timing, query selection, experiment registry."""

import pytest

from repro.bench import harness
from repro.bench.experiments import ALL_EXPERIMENTS, run_experiments
from repro.datasets.wiki import WikiConfig

SMALL = WikiConfig(num_entities=120, num_types=8, num_attrs=12,
                   vocabulary_size=60, seed=41)


@pytest.fixture(autouse=True)
def clean_cache():
    harness.clear_cache()
    yield
    harness.clear_cache()


class TestCaching:
    def test_wiki_indexes_cached(self):
        first = harness.wiki_indexes(d=2, config=SMALL)
        second = harness.wiki_indexes(d=2, config=SMALL)
        assert first is second

    def test_different_d_different_index(self):
        assert harness.wiki_indexes(d=2, config=SMALL) is not harness.wiki_indexes(
            d=3, config=SMALL
        )

    def test_workload_cached(self):
        indexes = harness.wiki_indexes(d=2, config=SMALL)
        assert harness.workload(indexes) is harness.workload(indexes)

    def test_profiles_cached(self):
        indexes = harness.wiki_indexes(d=2, config=SMALL)
        queries = harness.workload(indexes)[:4]
        first = harness.profile_workload(indexes, queries)
        second = harness.profile_workload(indexes, queries)
        assert first is second


class TestTiming:
    def test_time_run(self):
        from repro.search.pattern_enum import pattern_enum_search

        indexes = harness.wiki_indexes(d=2, config=SMALL)
        queries = harness.workload(indexes)
        seconds, result = harness.time_run(
            pattern_enum_search, indexes, queries[0], k=5
        )
        assert seconds > 0
        assert result.k == 5


class TestQuerySelection:
    def test_heavy_queries_sorted(self):
        indexes = harness.wiki_indexes(d=2, config=SMALL)
        queries = harness.workload(indexes)
        heavy = harness.heavy_queries(indexes, queries, count=3)
        counts = [profile.num_subtrees for profile in heavy]
        assert counts == sorted(counts, reverse=True)
        assert len(heavy) <= 3

    def test_pick_query_by_subtrees_band(self):
        indexes = harness.wiki_indexes(d=2, config=SMALL)
        queries = harness.workload(indexes)
        query = harness.pick_query_by_subtrees(indexes, queries, 1)
        assert query is not None

    def test_pick_query_fallback(self):
        indexes = harness.wiki_indexes(d=2, config=SMALL)
        queries = harness.workload(indexes)
        # Impossible band: falls back to any answerable query.
        query = harness.pick_query_by_subtrees(indexes, queries, 10**12)
        from repro.search.linear_enum import count_answers

        if query is not None:
            assert count_answers(indexes, query)[1] >= 1


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "fig6", "fig7", "fig8", "fig9", "fig10", "exp4",
            "fig11", "fig12", "fig13", "fig14_15", "fig16",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["figZZ"])

    def test_case_study_runs(self):
        (result,) = run_experiments(["fig14_15"])
        assert result.experiment_id == "fig14_15"
        kinds = {row[1] for row in result.rows}
        assert kinds == {"individual", "pattern"}
