"""Property tests: the path indexes are sound and complete.

Soundness: every stored entry is a real simple path of the graph whose
endpoint (or final attribute) contains the indexed word, with correct
precomputed score terms.  Completeness: every bounded simple path from any
root to any keyword occurrence appears in both indexes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.builder import build_indexes
from repro.index.path_enum import interleaved_labels, iter_paths_from
from repro.kg.graph import KnowledgeGraph

WORDS = ["ruby", "topaz", "opal"]
TYPES = ["TA", "TB"]
ATTRS = ["ra", "rb"]


@st.composite
def graphs(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    graph = KnowledgeGraph()
    for _ in range(num_nodes):
        node_type = draw(st.sampled_from(TYPES))
        text = " ".join(
            draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=2,
                          unique=True))
        )
        graph.add_node(node_type, text)
    possible = [
        (u, v, a)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if u != v
        for a in ATTRS
    ]
    for u, v, a in draw(
        st.lists(st.sampled_from(possible), max_size=10, unique=True)
    ) if possible else []:
        graph.add_edge(u, a, v)
    return graph


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graphs(), st.integers(min_value=1, max_value=3))
def test_soundness(graph, d):
    """Every entry is a real path matching its word, with correct terms."""
    indexes = build_indexes(graph, d=d)
    lexicon = indexes.lexicon
    for word, pid, entry in indexes.root_first.iter_entries():
        # Path is a real chain of edges.
        for i, attr in enumerate(entry.attrs):
            assert graph.has_edge(entry.nodes[i], attr, entry.nodes[i + 1])
        # Simple and bounded.
        assert len(set(entry.nodes)) == len(entry.nodes)
        assert len(entry.nodes) <= d
        # The word occurs where claimed, with the lexicon's similarity.
        if entry.matched_on_edge:
            assert lexicon.attr_sim(entry.attrs[-1], word) == entry.sim
            assert entry.pr == indexes.pagerank_scores[entry.nodes[-2]]
        else:
            assert lexicon.node_sim(entry.nodes[-1], word) == entry.sim
            assert entry.pr == indexes.pagerank_scores[entry.nodes[-1]]
        # The interned pattern matches the path's labels.
        pattern = indexes.interner.pattern(pid)
        full = interleaved_labels(graph, entry.nodes, entry.attrs)
        if entry.matched_on_edge:
            assert pattern.labels == full[:-1]
            assert pattern.ends_at_edge
        else:
            assert pattern.labels == full
            assert not pattern.ends_at_edge


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graphs(), st.integers(min_value=1, max_value=3))
def test_completeness(graph, d):
    """Every bounded path to a keyword occurrence is indexed (both ways)."""
    indexes = build_indexes(graph, d=d)
    lexicon = indexes.lexicon
    expected = set()  # (word, nodes, attrs, matched_on_edge)
    for root in graph.nodes():
        for nodes, attrs in iter_paths_from(graph, root, d):
            for word, _sim in lexicon.node_matches(nodes[-1]):
                expected.add((word, nodes, attrs, False))
            if attrs:
                for word, _sim in lexicon.attr_matches(attrs[-1]):
                    expected.add((word, nodes, attrs, True))
    stored_rf = {
        (word, entry.nodes, entry.attrs, entry.matched_on_edge)
        for word, _pid, entry in indexes.root_first.iter_entries()
    }
    stored_pf = {
        (word, entry.nodes, entry.attrs, entry.matched_on_edge)
        for word, _pid, entry in indexes.pattern_first.iter_entries()
    }
    assert stored_rf == expected
    assert stored_pf == expected


@settings(max_examples=20, deadline=None)
@given(graphs())
def test_path_counts_consistent(graph):
    """|Paths(w, r)| equals the number of stored (w, r) entries."""
    indexes = build_indexes(graph, d=3)
    root_first = indexes.root_first
    for word in list(root_first.words()):
        for root in list(root_first.roots(word)):
            assert root_first.path_count(word, root) == sum(
                1 for _ in root_first.paths(word, root)
            )
