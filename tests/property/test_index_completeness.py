"""Property tests: the path indexes are sound and complete.

Soundness: every stored entry is a real simple path of the graph whose
endpoint (or final attribute) contains the indexed word, with correct
precomputed score terms.  Completeness: every bounded simple path from any
root to any keyword occurrence appears in both indexes.

The columnar-store tests additionally compare the deduplicated
:class:`~repro.index.store.PostingStore` against a naive dict-of-lists
reference build of Algorithm 1: both must yield the exact same posting
*multiset* and the same ``|Paths(w, r)|`` counts, while the store keys
each physical path exactly once.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.builder import build_indexes
from repro.index.path_enum import interleaved_labels, iter_paths_from
from repro.kg.graph import KnowledgeGraph

WORDS = ["ruby", "topaz", "opal"]
TYPES = ["TA", "TB"]
ATTRS = ["ra", "rb"]


@st.composite
def graphs(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=6))
    graph = KnowledgeGraph()
    for _ in range(num_nodes):
        node_type = draw(st.sampled_from(TYPES))
        text = " ".join(
            draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=2,
                          unique=True))
        )
        graph.add_node(node_type, text)
    possible = [
        (u, v, a)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if u != v
        for a in ATTRS
    ]
    for u, v, a in draw(
        st.lists(st.sampled_from(possible), max_size=10, unique=True)
    ) if possible else []:
        graph.add_edge(u, a, v)
    return graph


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graphs(), st.integers(min_value=1, max_value=3))
def test_soundness(graph, d):
    """Every entry is a real path matching its word, with correct terms."""
    indexes = build_indexes(graph, d=d)
    lexicon = indexes.lexicon
    for word, pid, entry in indexes.root_first.iter_entries():
        # Path is a real chain of edges.
        for i, attr in enumerate(entry.attrs):
            assert graph.has_edge(entry.nodes[i], attr, entry.nodes[i + 1])
        # Simple and bounded.
        assert len(set(entry.nodes)) == len(entry.nodes)
        assert len(entry.nodes) <= d
        # The word occurs where claimed, with the lexicon's similarity.
        if entry.matched_on_edge:
            assert lexicon.attr_sim(entry.attrs[-1], word) == entry.sim
            assert entry.pr == indexes.pagerank_scores[entry.nodes[-2]]
        else:
            assert lexicon.node_sim(entry.nodes[-1], word) == entry.sim
            assert entry.pr == indexes.pagerank_scores[entry.nodes[-1]]
        # The interned pattern matches the path's labels.
        pattern = indexes.interner.pattern(pid)
        full = interleaved_labels(graph, entry.nodes, entry.attrs)
        if entry.matched_on_edge:
            assert pattern.labels == full[:-1]
            assert pattern.ends_at_edge
        else:
            assert pattern.labels == full
            assert not pattern.ends_at_edge


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graphs(), st.integers(min_value=1, max_value=3))
def test_completeness(graph, d):
    """Every bounded path to a keyword occurrence is indexed (both ways)."""
    indexes = build_indexes(graph, d=d)
    lexicon = indexes.lexicon
    expected = set()  # (word, nodes, attrs, matched_on_edge)
    for root in graph.nodes():
        for nodes, attrs in iter_paths_from(graph, root, d):
            for word, _sim in lexicon.node_matches(nodes[-1]):
                expected.add((word, nodes, attrs, False))
            if attrs:
                for word, _sim in lexicon.attr_matches(attrs[-1]):
                    expected.add((word, nodes, attrs, True))
    stored_rf = {
        (word, entry.nodes, entry.attrs, entry.matched_on_edge)
        for word, _pid, entry in indexes.root_first.iter_entries()
    }
    stored_pf = {
        (word, entry.nodes, entry.attrs, entry.matched_on_edge)
        for word, _pid, entry in indexes.pattern_first.iter_entries()
    }
    assert stored_rf == expected
    assert stored_pf == expected


@settings(max_examples=20, deadline=None)
@given(graphs())
def test_path_counts_consistent(graph):
    """|Paths(w, r)| equals the number of stored (w, r) entries."""
    indexes = build_indexes(graph, d=3)
    root_first = indexes.root_first
    for word in list(root_first.words()):
        for root in list(root_first.roots(word)):
            assert root_first.path_count(word, root) == sum(
                1 for _ in root_first.paths(word, root)
            )


def naive_reference_build(graph, d, lexicon, pagerank_scores, interner):
    """Algorithm 1 as a plain dict-of-lists build — no store, no dedup.

    Returns (posting multiset, path-count dict, physical path set) where a
    posting is the full (word, pid, nodes, attrs, matched_on_edge, pr, sim)
    tuple, path counts are per (word, root), and the physical set holds
    distinct (nodes, attrs, matched_on_edge) triples.
    """
    postings = Counter()
    path_counts = Counter()
    physical = set()
    for root in graph.nodes():
        for nodes, attrs in iter_paths_from(graph, root, d):
            labels = interleaved_labels(graph, nodes, attrs)
            endpoint = nodes[-1]
            node_word_sims = lexicon.node_matches(endpoint)
            if node_word_sims:
                pid = interner.intern(labels, ends_at_edge=False)
                pr = pagerank_scores[endpoint]
                physical.add((nodes, attrs, False))
                for word, sim in node_word_sims:
                    postings[(word, pid, nodes, attrs, False, pr, sim)] += 1
                    path_counts[(word, root)] += 1
            if attrs:
                attr_word_sims = lexicon.attr_matches(attrs[-1])
                if attr_word_sims:
                    pid = interner.intern(labels[:-1], ends_at_edge=True)
                    pr = pagerank_scores[nodes[-2]]
                    physical.add((nodes, attrs, True))
                    for word, sim in attr_word_sims:
                        postings[
                            (word, pid, nodes, attrs, True, pr, sim)
                        ] += 1
                        path_counts[(word, root)] += 1
    return postings, path_counts, physical


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graphs(), st.integers(min_value=1, max_value=3))
def test_store_matches_naive_reference(graph, d):
    """The columnar store equals a naive dict-of-lists build exactly.

    Same posting multiset through both index views, same |Paths(w, r)|
    counts, and exactly one interned path per distinct physical path.
    """
    indexes = build_indexes(graph, d=d)
    reference, ref_counts, physical = naive_reference_build(
        graph, d, indexes.lexicon, indexes.pagerank_scores, indexes.interner
    )

    def observed(index) -> Counter:
        multiset = Counter()
        for word, pid, entry in index.iter_entries():
            multiset[
                (
                    word,
                    pid,
                    entry.nodes,
                    entry.attrs,
                    entry.matched_on_edge,
                    entry.pr,
                    entry.sim,
                )
            ] += 1
        return multiset

    assert observed(indexes.root_first) == reference
    assert observed(indexes.pattern_first) == reference

    # |Paths(w, r)| counts match the reference for every probed pair —
    # including pairs the reference never saw (count 0).
    root_first = indexes.root_first
    for word in list(root_first.words()):
        for root in list(root_first.roots(word)):
            assert root_first.path_count(word, root) == ref_counts[
                (word, root)
            ]
    for (word, root), count in ref_counts.items():
        assert root_first.path_count(word, root) == count

    # Deduplication: exactly one stored path per physical path, and the
    # posting/path accounting lines up.
    store = indexes.store
    assert store.num_paths == len(physical)
    assert store.num_postings() == sum(reference.values())
    for path_id in range(store.num_paths):
        key = (
            store.path_nodes(path_id),
            store.path_attrs(path_id),
            store.path_matched_on_edge(path_id),
        )
        assert key in physical


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graphs(), st.integers(min_value=1, max_value=3))
def test_store_native_variants_agree(graph, d):
    """form_tree/score_terms on ids agree with the PathEntry versions."""
    from itertools import product

    from repro.index.entry import combination_score_terms, entries_form_tree

    indexes = build_indexes(graph, d=d)
    store = indexes.store
    root_first = indexes.root_first
    words = sorted(root_first.words())[:2]
    if len(words) < 2:
        return
    maps = [root_first.roots(word) for word in words]
    shared = set(maps[0]) & set(maps[1])
    for root in sorted(shared):
        lists = [root_first.pattern_map(word, root) for word in words]
        for by_pattern in product(*(sorted(m) for m in lists)):
            plists = [m[pid] for m, pid in zip(lists, by_pattern)]
            id_columns = [plist.path_ids for plist in plists]
            sim_columns = [plist.sims for plist in plists]
            for combo_idx in product(*(range(len(p)) for p in plists)):
                path_ids = [
                    column[i] for column, i in zip(id_columns, combo_idx)
                ]
                sims = [
                    column[i] for column, i in zip(sim_columns, combo_idx)
                ]
                entries = [plist[i] for plist, i in zip(plists, combo_idx)]
                assert store.form_tree(path_ids) == entries_form_tree(
                    entries
                )
                assert store.score_terms(
                    path_ids, sims
                ) == combination_score_terms(entries)
