"""Theorem 1: the s-t PATHS -> COUNTPAT reduction, verified end to end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.reduction import (
    build_reduction_instance,
    count_st_paths,
    count_tree_patterns,
    verify_reduction,
)


class TestCountStPaths:
    def test_single_edge(self):
        assert count_st_paths({0: [1]}, 0, 1) == 1

    def test_two_parallel_routes(self):
        assert count_st_paths({0: [1, 2], 1: [3], 2: [3], 3: []}, 0, 3) == 2

    def test_no_path(self):
        assert count_st_paths({0: [1], 2: []}, 0, 2) == 0

    def test_s_equals_t(self):
        assert count_st_paths({0: []}, 0, 0) == 1

    def test_cycle_only_simple_paths(self):
        graph = {0: [1], 1: [2, 0], 2: [0, 3], 3: []}
        assert count_st_paths(graph, 0, 3) == 1

    def test_layered_counts_multiply(self):
        """Two 2-way layers give 4 simple paths."""
        graph = {0: [1, 2], 1: [3, 4], 2: [3, 4], 3: [5], 4: [5], 5: []}
        assert count_st_paths(graph, 0, 5) == 4

    def test_complete_dag(self):
        # Complete DAG on 4 nodes: paths 0->3 = 1 + 2 + 1*1 (0-1-2-3, 0-1-3,
        # 0-2-3, 0-3) = 4 simple paths? enumerate: [0,3],[0,1,3],[0,2,3],
        # [0,1,2,3] = 4.
        graph = {0: [1, 2, 3], 1: [2, 3], 2: [3], 3: []}
        assert count_st_paths(graph, 0, 3) == 4


class TestReductionConstruction:
    def test_structure(self):
        digraph = {0: [1], 1: []}
        kg, query, d = build_reduction_instance(digraph, 0, 1)
        # Two copies (2 nodes each) plus the fresh root.
        assert kg.num_nodes == 5
        assert kg.num_edges == 2 + 2  # copied edges + root links
        assert d == 3
        assert len(query.split()) == 2

    def test_unique_types(self):
        digraph = {0: [1], 1: [2], 2: []}
        kg, _query, _d = build_reduction_instance(digraph, 0, 2)
        types = [kg.node_type(v) for v in kg.nodes()]
        assert len(set(types)) == len(types)

    def test_unknown_endpoints_rejected(self):
        from repro.core.errors import GraphError

        with pytest.raises(GraphError):
            build_reduction_instance({0: [1]}, 0, 99)


class TestSquaredCorrespondence:
    @pytest.mark.parametrize(
        "digraph,s,t,expected_paths",
        [
            ({0: [1]}, 0, 1, 1),
            ({0: [1, 2], 1: [3], 2: [3], 3: []}, 0, 3, 2),
            ({0: [1, 2, 3], 1: [2, 3], 2: [3], 3: []}, 0, 3, 4),
            ({0: [1], 2: []}, 0, 2, 0),
            ({0: [1], 1: [2, 0], 2: [0, 3], 3: []}, 0, 3, 1),
        ],
    )
    def test_countpat_is_n_squared(self, digraph, s, t, expected_paths):
        n_paths, n_patterns = verify_reduction(digraph, s, t)
        assert n_paths == expected_paths
        assert n_patterns == n_paths**2

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=10,
            unique=True,
        )
    )
    def test_random_digraphs(self, edge_list):
        digraph = {node: [] for node in range(5)}
        for u, v in edge_list:
            if u != v:
                digraph[u].append(v)
        n_paths, n_patterns = verify_reduction(digraph, 0, 4)
        assert n_patterns == n_paths**2


class TestCountTreePatterns:
    def test_direct_call(self):
        digraph = {0: [1, 2], 1: [3], 2: [3], 3: []}
        kg, query, d = build_reduction_instance(digraph, 0, 3)
        assert count_tree_patterns(kg, query, d) == 4
