"""Theorem 5: the sampling-error bound and its empirical validity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.hoeffding import (
    bound_vs_simulation,
    minimum_rate_for_error,
    pairwise_error_bound,
    simulate_error_rate,
)


class TestBound:
    def test_formula(self):
        # exp(-2 * ((3-1)/(3+1))^2 * 0.5^2) = exp(-0.125)
        assert pairwise_error_bound(3.0, 1.0, 0.5) == pytest.approx(
            math.exp(-2 * 0.25 * 0.25)
        )

    def test_monotone_in_rate(self):
        bounds = [pairwise_error_bound(3.0, 1.0, rho) for rho in (0.1, 0.5, 1.0)]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_monotone_in_gap(self):
        close = pairwise_error_bound(2.0, 1.9, 0.5)
        far = pairwise_error_bound(2.0, 0.1, 0.5)
        assert far < close

    def test_requires_s1_greater(self):
        with pytest.raises(ValueError):
            pairwise_error_bound(1.0, 2.0, 0.5)
        with pytest.raises(ValueError):
            pairwise_error_bound(1.0, 1.0, 0.5)

    def test_rho_validated(self):
        with pytest.raises(ValueError):
            pairwise_error_bound(2.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            pairwise_error_bound(2.0, 1.0, 1.5)

    @given(
        st.floats(min_value=1.01, max_value=100),
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_bound_in_unit_interval(self, ratio, s2, rho):
        s1 = s2 * ratio
        bound = pairwise_error_bound(s1, s2, rho)
        assert 0.0 < bound <= 1.0


class TestMinimumRate:
    def test_inverts_bound(self):
        # Wide gap (9/11) so the 0.4 target is attainable below rho = 1.
        rho = minimum_rate_for_error(10.0, 1.0, 0.4)
        assert rho is not None
        assert rho <= 1.0
        assert pairwise_error_bound(10.0, 1.0, rho) == pytest.approx(0.4)

    def test_unattainable_returns_none(self):
        # Tiny gap: even rho = 1 can't push the bound below 1e-6.
        assert minimum_rate_for_error(1.01, 1.0, 1e-6) is None

    def test_validates_error(self):
        with pytest.raises(ValueError):
            minimum_rate_for_error(2.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            minimum_rate_for_error(1.0, 2.0, 0.5)


class TestSimulation:
    def test_simulated_error_below_bound(self):
        """The Hoeffding bound dominates the empirical error rate."""
        s1 = [0.4] * 40  # total 16
        s2 = [0.25] * 40  # total 10
        for rho in (0.2, 0.5, 0.8):
            bound, simulated = bound_vs_simulation(s1, s2, rho, trials=1500)
            assert simulated <= bound + 0.02  # slack for Monte-Carlo noise

    def test_full_rate_never_errs(self):
        s1 = [1.0, 2.0, 3.0]
        s2 = [0.5, 1.0, 1.5]
        assert simulate_error_rate(s1, s2, rho=1.0, trials=200) == 0.0

    def test_error_decreases_with_rate(self):
        s1 = [0.11] * 50
        s2 = [0.10] * 50
        low = simulate_error_rate(s1, s2, 0.1, trials=1500, seed=1)
        high = simulate_error_rate(s1, s2, 0.9, trials=1500, seed=1)
        assert high <= low + 0.02

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_error_rate([1.0], [0.5, 0.2], 0.5)
        with pytest.raises(ValueError):
            simulate_error_rate([1.0], [2.0], 0.5)

    def test_deterministic_with_seed(self):
        s1 = [0.3] * 20
        s2 = [0.2] * 20
        a = simulate_error_rate(s1, s2, 0.3, trials=300, seed=9)
        b = simulate_error_rate(s1, s2, 0.3, trials=300, seed=9)
        assert a == b


class TestAgainstRealAlgorithm:
    def test_theorem5_holds_for_linear_topk(self, wiki_indexes):
        """Run LINEARENUM-TOPK with sampling many times; the rate at which
        two specific patterns invert must respect the bound."""
        from repro.datasets.queries import WorkloadConfig, generate_workload
        from repro.search.linear_topk import linear_topk_search

        queries = generate_workload(
            wiki_indexes, WorkloadConfig(queries_per_size=3, max_keywords=2)
        )
        # Find a query with >= 2 patterns and a clear score gap.
        chosen = None
        for query in queries:
            exact = linear_topk_search(wiki_indexes, query, k=5)
            if exact.num_answers >= 2 and exact.scores()[0] > 1.5 * exact.scores()[1]:
                chosen = (query, exact)
                break
        if chosen is None:
            pytest.skip("workload produced no query with a clear gap")
        query, exact = chosen
        s1, s2 = exact.scores()[0], exact.scores()[1]
        top_key = exact.pattern_keys()[0]
        rho = 0.5
        trials = 60
        inversions = 0
        for seed in range(trials):
            sampled = linear_topk_search(
                wiki_indexes,
                query,
                k=1,
                sampling_threshold=0,
                sampling_rate=rho,
                seed=seed,
            )
            if sampled.num_answers and sampled.pattern_keys()[0] != top_key:
                inversions += 1
        bound = pairwise_error_bound(s1, s2, rho)
        assert inversions / trials <= min(1.0, bound + 0.15)
