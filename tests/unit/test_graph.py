"""KnowledgeGraph structure: interning, adjacency, induced subgraphs."""

import pytest

from repro.core.errors import GraphError
from repro.kg.graph import TEXT_TYPE_NAME, Edge, KnowledgeGraph


@pytest.fixture
def small_graph():
    graph = KnowledgeGraph()
    a = graph.add_node("Software", "SQL Server")
    b = graph.add_node("Company", "Microsoft")
    c = graph.add_node("Person", "Bill Gates")
    graph.add_edge(a, "Developer", b)
    graph.add_edge(b, "Founder", c)
    return graph, (a, b, c)


class TestInterning:
    def test_type_ids_dense_and_stable(self):
        graph = KnowledgeGraph()
        t1 = graph.intern_type("A")
        t2 = graph.intern_type("B")
        assert (t1, t2) == (0, 1)
        assert graph.intern_type("A") == t1
        assert graph.type_name(t1) == "A"
        assert graph.num_types == 2

    def test_type_custom_text_kept_on_first_intern(self):
        graph = KnowledgeGraph()
        tid = graph.intern_type("A", text="alpha beta")
        graph.intern_type("A", text="ignored later")
        assert graph.type_text(tid) == "alpha beta"

    def test_attr_interning(self):
        graph = KnowledgeGraph()
        aid = graph.intern_attr("Revenue")
        assert graph.attr_name(aid) == "Revenue"
        assert graph.attr_text(aid) == "Revenue"

    def test_unknown_lookups_raise(self):
        graph = KnowledgeGraph()
        with pytest.raises(GraphError):
            graph.type_id("nope")
        with pytest.raises(GraphError):
            graph.attr_id("nope")


class TestNodes:
    def test_add_node(self, small_graph):
        graph, (a, b, c) = small_graph
        assert graph.num_nodes == 3
        assert graph.node_text(a) == "SQL Server"
        assert graph.node_type_name(b) == "Company"
        assert graph.node_is_entity(c)

    def test_text_node(self):
        graph = KnowledgeGraph()
        node = graph.add_text_node("US$ 77 billion")
        assert not graph.node_is_entity(node)
        assert graph.node_type_name(node) == TEXT_TYPE_NAME
        assert graph.type_text(graph.node_type(node)) == ""

    def test_nodes_of_type(self, small_graph):
        graph, (a, _b, _c) = small_graph
        tid = graph.type_id("Software")
        assert list(graph.nodes_of_type(tid)) == [a]
        assert list(graph.nodes_of_type(graph.intern_type("Unused"))) == []

    def test_bad_type_id_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(GraphError):
            graph.add_node_typed(5, "x")


class TestEdges:
    def test_adjacency(self, small_graph):
        graph, (a, b, c) = small_graph
        dev = graph.attr_id("Developer")
        assert graph.out_edges(a) == [(dev, b)]
        assert graph.in_edges(b) == [(dev, a)]
        assert graph.out_degree(a) == 1
        assert graph.in_degree(c) == 1
        assert graph.num_edges == 2

    def test_duplicate_edge_rejected(self, small_graph):
        graph, (a, b, _c) = small_graph
        with pytest.raises(GraphError):
            graph.add_edge(a, "Developer", b)

    def test_parallel_edges_distinct_attrs_ok(self, small_graph):
        graph, (a, b, _c) = small_graph
        graph.add_edge(a, "Vendor", b)
        assert graph.out_degree(a) == 2

    def test_edge_to_unknown_node_rejected(self, small_graph):
        graph, (a, _b, _c) = small_graph
        with pytest.raises(GraphError):
            graph.add_edge_typed(a, 0, 99)

    def test_bad_attr_id_rejected(self, small_graph):
        graph, (a, b, _c) = small_graph
        with pytest.raises(GraphError):
            graph.add_edge_typed(a, 99, b)

    def test_edges_iteration(self, small_graph):
        graph, (a, b, c) = small_graph
        listed = list(graph.edges())
        assert Edge(a, graph.attr_id("Developer"), b) in listed
        assert len(listed) == 2

    def test_has_edge(self, small_graph):
        graph, (a, b, _c) = small_graph
        assert graph.has_edge(a, graph.attr_id("Developer"), b)
        assert not graph.has_edge(b, graph.attr_id("Developer"), a)

    def test_edges_with_attr_cache(self, small_graph):
        graph, (a, b, c) = small_graph
        dev = graph.attr_id("Developer")
        assert list(graph.edges_with_attr(dev)) == [(a, b)]
        # Cache must invalidate on mutation.
        d = graph.add_node("Company", "Oracle")
        graph.add_edge(d, "Developer", c)
        assert sorted(graph.edges_with_attr(dev)) == sorted([(a, b), (d, c)])


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, small_graph):
        graph, (a, b, c) = small_graph
        sub = graph.induced_subgraph([a, b])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1  # Founder edge to c dropped
        assert sub.node_text(0) == "SQL Server"

    def test_type_tables_shared(self, small_graph):
        graph, (a, _b, _c) = small_graph
        sub = graph.induced_subgraph([a])
        assert sub.type_id("Software") == graph.type_id("Software")
        assert sub.num_types == graph.num_types

    def test_unknown_node_rejected(self, small_graph):
        graph, _nodes = small_graph
        with pytest.raises(GraphError):
            graph.induced_subgraph([0, 42])

    def test_duplicate_keep_nodes_deduplicated(self, small_graph):
        graph, (a, _b, _c) = small_graph
        sub = graph.induced_subgraph([a, a, a])
        assert sub.num_nodes == 1

    def test_empty_subgraph(self, small_graph):
        graph, _nodes = small_graph
        sub = graph.induced_subgraph([])
        assert sub.num_nodes == 0
        assert sub.num_edges == 0


def test_repr(small_graph):
    graph, _nodes = small_graph
    assert "nodes=3" in repr(graph)
