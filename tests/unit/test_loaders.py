"""Loaders: JSON infobox documents, CSV relations, N-Triples."""

import json

import pytest

from repro.core.errors import LoaderError
from repro.kg.entity import EntityRef, TextValue
from repro.kg.loaders.csvkb import load_csv_kb, load_csv_relations
from repro.kg.loaders.jsonkb import dump_json_kb, load_json_kb, save_json_kb
from repro.kg.loaders.ntriples import (
    iri_local_name,
    load_ntriples,
    parse_ntriples,
)

JSON_DOC = {
    "types": {"Software": "Software", "Company": "Company"},
    "attribute_types": {"Developer": "Developer"},
    "entities": [
        {
            "name": "SQL Server",
            "type": "Software",
            "attributes": {
                "Developer": {"ref": "Microsoft"},
                "Written in": "C++",
            },
        },
        {
            "name": "Microsoft",
            "type": "Company",
            "attributes": {"Revenue": ["US$ 77 billion", 2013]},
        },
    ],
}


class TestJsonLoader:
    def test_load_from_dict(self):
        kb = load_json_kb(JSON_DOC)
        assert len(kb) == 2
        assert kb.entity("SQL Server").attributes["Developer"] == [
            EntityRef("Microsoft")
        ]
        assert TextValue("C++") in kb.entity("SQL Server").attributes["Written in"]

    def test_numbers_coerced_to_text(self):
        kb = load_json_kb(JSON_DOC)
        assert TextValue("2013") in kb.entity("Microsoft").attributes["Revenue"]

    def test_load_from_json_string(self):
        kb = load_json_kb(json.dumps(JSON_DOC))
        assert len(kb) == 2

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "kb.json"
        path.write_text(json.dumps(JSON_DOC))
        assert len(load_json_kb(path)) == 2
        assert len(load_json_kb(str(path))) == 2

    def test_roundtrip(self, tmp_path):
        kb = load_json_kb(JSON_DOC)
        path = tmp_path / "kb2.json"
        save_json_kb(kb, path)
        again = load_json_kb(path)
        assert dump_json_kb(again) == dump_json_kb(kb)

    def test_missing_file(self):
        with pytest.raises(LoaderError):
            load_json_kb("/nonexistent/kb.json")

    def test_invalid_json_string(self):
        with pytest.raises(LoaderError):
            load_json_kb("{broken json")

    def test_missing_entities_key(self):
        with pytest.raises(LoaderError):
            load_json_kb({"types": {}})

    def test_entity_missing_name(self):
        with pytest.raises(LoaderError):
            load_json_kb({"entities": [{"type": "T"}]})

    def test_bad_ref_object(self):
        doc = {
            "entities": [
                {"name": "A", "type": "T", "attributes": {"x": {"ref": 7}}}
            ]
        }
        with pytest.raises(LoaderError):
            load_json_kb(doc)

    def test_unsupported_value(self):
        doc = {
            "entities": [
                {"name": "A", "type": "T", "attributes": {"x": {"oops": 1}}}
            ]
        }
        with pytest.raises(LoaderError):
            load_json_kb(doc)


class TestCsvLoader:
    def test_entities_and_relations(self, tmp_path):
        entities = tmp_path / "entities.csv"
        entities.write_text(
            "name,type\nSQL Server,Software\nMicrosoft,Company\n"
        )
        relations = tmp_path / "relations.csv"
        relations.write_text(
            "source,attribute,target,kind\n"
            "SQL Server,Developer,Microsoft,ref\n"
            "Microsoft,Revenue,US$ 77 billion,text\n"
        )
        kb = load_csv_kb(entities, relations)
        assert len(kb) == 2
        assert kb.entity("SQL Server").attributes["Developer"] == [
            EntityRef("Microsoft")
        ]
        assert kb.entity("Microsoft").attributes["Revenue"] == [
            TextValue("US$ 77 billion")
        ]

    def test_rows_iterable(self):
        kb = load_csv_kb([("A", "T1"), ("B", "T2")])
        assert len(kb) == 2

    def test_default_kind_is_ref(self):
        kb = load_csv_kb([("A", "T"), ("B", "T")])
        load_csv_relations([("A", "rel", "B")], kb)
        assert kb.entity("A").attributes["rel"] == [EntityRef("B")]

    def test_entity_text_column(self):
        kb = load_csv_kb([("A", "T", "alpha thing")])
        assert kb.entity("A").text == "alpha thing"

    def test_bad_kind_rejected(self):
        kb = load_csv_kb([("A", "T"), ("B", "T")])
        with pytest.raises(LoaderError):
            load_csv_relations([("A", "rel", "B", "banana")], kb)

    def test_short_row_rejected(self):
        with pytest.raises(LoaderError):
            load_csv_kb([("OnlyName",)])

    def test_missing_file(self):
        with pytest.raises(LoaderError):
            load_csv_kb("/nonexistent/entities.csv")


NTRIPLES = """
# a comment line
<http://ex.org/SQL_Server> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/Software> .
<http://ex.org/SQL_Server> <http://www.w3.org/2000/01/rdf-schema#label> "SQL Server" .
<http://ex.org/SQL_Server> <http://ex.org/developer> <http://ex.org/Microsoft> .
<http://ex.org/Microsoft> <http://ex.org/revenue> "US$ 77 billion"@en .
<http://ex.org/Microsoft> <http://ex.org/founded> "1975"^^<http://www.w3.org/2001/XMLSchema#integer> .
""".strip().splitlines()


class TestNTriples:
    def test_iri_local_name(self):
        assert iri_local_name("http://dbpedia.org/resource/Bill_Gates") == "Bill Gates"
        assert iri_local_name("http://ex.org/onto#Software") == "Software"

    def test_parse_triples(self):
        triples = list(parse_ntriples(NTRIPLES))
        assert len(triples) == 5
        assert triples[0][3] is True  # IRI object
        assert triples[3] == (
            "http://ex.org/Microsoft",
            "http://ex.org/revenue",
            "US$ 77 billion",
            False,
        )

    def test_malformed_line_raises_with_lineno(self):
        with pytest.raises(LoaderError, match="line 1"):
            list(parse_ntriples(["not a triple"]))

    def test_escapes_unescaped(self):
        line = '<http://a> <http://b> "say \\"hi\\"\\n" .'
        (_s, _p, obj, _is_iri), = parse_ntriples([line])
        assert obj == 'say "hi"\n'

    def test_load_builds_kb(self):
        kb = load_ntriples(NTRIPLES)
        assert kb.entity("SQL Server").type_name == "Software"
        assert kb.entity("SQL Server").attributes["developer"] == [
            EntityRef("Microsoft")
        ]
        # literal with language tag / datatype both load as text
        values = kb.entity("Microsoft").attributes
        assert values["revenue"] == [TextValue("US$ 77 billion")]
        assert values["founded"] == [TextValue("1975")]

    def test_referenced_only_object_becomes_entity(self):
        kb = load_ntriples(NTRIPLES)
        assert kb.has_entity("Microsoft")

    def test_max_triples_truncates(self):
        kb = load_ntriples(NTRIPLES, max_triples=2)
        assert kb.has_entity("SQL Server")
        assert not kb.has_entity("Microsoft")

    def test_local_name_collision_disambiguated(self):
        lines = [
            "<http://a.org/X> <http://ex.org/rel> <http://b.org/X> .",
        ]
        kb = load_ntriples(lines)
        names = sorted(e.name for e in kb.entities())
        assert names == ["X", "X (2)"]

    def test_missing_file(self):
        with pytest.raises(LoaderError):
            load_ntriples("/nonexistent/data.nt")

    def test_graph_roundtrip(self):
        """Loaded KB builds a searchable graph end to end."""
        from repro.kg.builder import build_graph
        from repro.index.builder import build_indexes
        from repro.search.pattern_enum import pattern_enum_search

        kb = load_ntriples(NTRIPLES)
        graph, _nodes = build_graph(kb)
        indexes = build_indexes(graph, d=3)
        result = pattern_enum_search(indexes, "software microsoft revenue", k=3)
        assert result.num_answers >= 1
