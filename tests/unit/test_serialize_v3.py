"""The v3 mmap index format: laziness, delta overlay, migration, crash
safety.

v3 lays every posting/bound column out as flat fixed-width arrays behind
an offset table (``docs/index-format.md``); ``load_indexes`` maps the
file and returns a :class:`~repro.index.mmapstore.MappedPostingStore`
whose views deserialize one word at a time.  These tests pin the three
contracts the format exists for:

* **bit-identity** — all four algorithms agree with the in-memory build
  through every migration chain (build→v3, v1→v3, v2→v3, sharded v3);
* **laziness** — cold open + first query never thaws the store and only
  materializes the queried words (class counters assert it);
* **O(delta) mutation** — mutation lands in the heap delta overlay (no
  wholesale thaw, only the touched word's columns leave the mapping),
  bumps the version, pre-mutation snapshots keep serving the old bytes,
  and post-mutation / post-compaction answers are bit-identical to a
  heap engine that applied the same updates.
"""

import os
import pickle

import pytest

from repro.core.errors import PathIndexError
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import ResolvedQuery, build_indexes
from repro.index.incremental import add_entity, add_relationship
from repro.index.mmapstore import MappedPostingStore
from repro.index.serialize import (
    FORMAT_NAME,
    compact_indexes,
    describe_index_file,
    load_indexes,
    load_sharded_indexes,
    save_indexes,
    save_sharded_indexes,
)
from repro.index.shards import partition_indexes
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search
from test_serialize_v2 import make_legacy_v1_bytes

WIKI_CONFIG = WikiConfig(
    num_entities=400, num_types=16, num_attrs=24, vocabulary_size=160, seed=31
)


@pytest.fixture(scope="module")
def wiki_indexes():
    graph = generate_wiki_graph(WIKI_CONFIG)
    return build_indexes(graph, d=3)


def _query_for(indexes, num_words=2):
    words = sorted(
        indexes.store.words(),
        key=lambda w: (-indexes.store.num_postings(w), w),
    )[:num_words]
    return ResolvedQuery(tuple(words))


def _all_algorithms(indexes, query, k=10):
    """Four-algorithm top-k with full subtree rows, normalized."""
    results = {
        "pattern_enum": pattern_enum_search(indexes, query, k=k),
        "linear": linear_topk_search(indexes, query, k=k),
        "linear_topk": linear_topk_search(
            indexes, query, k=k, sampling_threshold=0, sampling_rate=0.5,
            seed=7,
        ),
        "baseline": baseline_search(indexes, query, k=k),
    }
    return {
        name: [
            (
                answer.pattern_key,
                answer.score,
                [tuple(combo) for combo in answer.subtrees],
            )
            for answer in result.answers
        ]
        for name, result in results.items()
    }


class TestV3RoundTrip:
    def test_loads_backed(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        loaded = load_indexes(path)
        assert isinstance(loaded.store, MappedPostingStore)
        assert loaded.store._backed
        assert loaded.d == wiki_indexes.d
        assert loaded.num_entries == wiki_indexes.num_entries
        assert loaded.store.num_paths == wiki_indexes.store.num_paths

    def test_search_identical_after_roundtrip(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        loaded = load_indexes(path)
        query = _query_for(wiki_indexes)
        assert _all_algorithms(loaded, query) == _all_algorithms(
            wiki_indexes, query
        )

    def test_default_save_is_v3(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path)
        assert isinstance(load_indexes(path).store, MappedPostingStore)

    def test_unknown_version_rejected(self, wiki_indexes, tmp_path):
        with pytest.raises(PathIndexError):
            save_indexes(wiki_indexes, tmp_path / "wiki.idx", version=9)

    def test_load_seconds_recorded(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path)
        loaded = load_indexes(path)
        assert loaded.load_seconds > 0.0
        from repro.search.service import SearchService

        service = SearchService(loaded)
        assert service.stats.load_seconds == loaded.load_seconds
        assert "cold start" in service.stats.format()


class TestLaziness:
    def test_cold_open_and_first_query_stay_lazy(
        self, wiki_indexes, tmp_path
    ):
        """The O(1)-cold-start claim: no thaw, only queried words built."""
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        query = _query_for(wiki_indexes, num_words=2)
        thawed = MappedPostingStore.backed_stores_thawed
        words = MappedPostingStore.words_materialized
        loaded = load_indexes(path)
        assert MappedPostingStore.words_materialized == words, (
            "opening the file materialized posting columns"
        )
        pattern_enum_search(loaded, query, k=10)
        assert MappedPostingStore.backed_stores_thawed == thawed
        built = MappedPostingStore.words_materialized - words
        assert 0 < built <= 4 * len(query)

    def test_posting_columns_are_views(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        loaded = load_indexes(path)
        ids = next(iter(loaded.store._posting_ids.values()))
        assert isinstance(ids, memoryview)

    def test_snapshot_protocol_stays_lazy(self, wiki_indexes, tmp_path):
        """SearchService snapshots over a backed store must not force the
        vocabulary: the pre-seeded lazy bound columns are adopted as-is."""
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        loaded = load_indexes(path)
        words = MappedPostingStore.words_materialized
        snapshot = loaded.snapshot()
        assert MappedPostingStore.words_materialized == words
        query = _query_for(wiki_indexes)
        assert _all_algorithms(snapshot, query) == _all_algorithms(
            wiki_indexes, query
        )


def _apply_updates(bundle):
    """The shared mutation script for the differential tests.

    Deterministic: applied to a mapped bundle and to a heap oracle, it
    produces identical node/path/posting ids in both.
    """
    a = add_entity(bundle, "city", "overlayton riverbed", pagerank=0.004)
    b = add_entity(bundle, "person", "quanta overlayton", pagerank=0.003)
    add_relationship(bundle, a, "mayor", b)
    return (a, b)


class TestDeltaOverlay:
    def _loaded(self, indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(indexes, path, version=3)
        return load_indexes(path)

    def test_mutation_stays_backed_and_bumps_version(
        self, wiki_indexes, tmp_path
    ):
        """O(delta): a posting append must not thaw — only the touched
        word's columns leave the mapping."""
        loaded = self._loaded(wiki_indexes, tmp_path)
        store = loaded.store
        words = iter(store.words())
        word = next(words)
        untouched = next(words)
        before_version = store.version
        thawed = MappedPostingStore.backed_stores_thawed
        store.add_posting(word, 0, 0.5)
        assert MappedPostingStore.backed_stores_thawed == thawed
        assert store._backed
        assert store.version > before_version
        assert not isinstance(store._posting_ids[word], memoryview)
        assert isinstance(store._posting_ids[untouched], memoryview)
        assert store.num_postings(word) == (
            wiki_indexes.store.num_postings(word) + 1
        )
        assert store.overlay_words == 1
        assert store.overlay_postings == 1

    def test_snapshot_survives_mutation(self, wiki_indexes, tmp_path):
        """A snapshot pinned before the overlay keeps the mapped bytes."""
        loaded = self._loaded(wiki_indexes, tmp_path)
        query = _query_for(wiki_indexes)
        expected = _all_algorithms(wiki_indexes, query)
        snapshot = loaded.snapshot()
        loaded.store.add_posting(query[0], 0, 0.125)
        assert _all_algorithms(snapshot, query) == expected

    def test_incremental_update_answers_change(self, wiki_indexes, tmp_path):
        """The overlay posting is searchable after the views refresh."""
        loaded = self._loaded(wiki_indexes, tmp_path)
        query = _query_for(wiki_indexes, num_words=1)
        word = query[0]
        before = loaded.store.num_postings(word)
        loaded.store.add_posting(word, 0, 1.0)
        loaded.pattern_first.finalize()
        loaded.root_first.finalize()
        assert loaded.store.num_postings(word) == before + 1
        assert loaded.store._backed
        result = pattern_enum_search(loaded, query, k=10)
        assert result.num_answers >= 1

    def test_explicit_thaw_is_the_only_thaw(self, wiki_indexes, tmp_path):
        """thaw() is an opt-in escape hatch, counted by the class
        counter; afterwards the store behaves like a heap store."""
        loaded = self._loaded(wiki_indexes, tmp_path)
        store = loaded.store
        _apply_updates(loaded)  # overlay first, to cover the mixed path
        thawed = MappedPostingStore.backed_stores_thawed
        store.thaw()
        assert MappedPostingStore.backed_stores_thawed == thawed + 1
        assert not store._backed
        assert store.overlay_words == 0
        store.thaw()  # idempotent
        assert MappedPostingStore.backed_stores_thawed == thawed + 1
        query = _query_for(wiki_indexes, num_words=1)
        result = pattern_enum_search(loaded, query, k=10)
        assert result.num_answers >= 1

    def test_post_mutation_identical_to_heap_oracle(
        self, wiki_indexes, tmp_path
    ):
        """All four algorithms agree with a heap engine that applied the
        same updates — the no-thaw acceptance gate at unit scale."""
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        mapped = load_indexes(path)
        oracle = load_indexes(
            tmp_path / "wiki.idx"
        )  # second mapping, thawed into a heap oracle
        oracle.store.thaw()
        assert _apply_updates(mapped) == _apply_updates(oracle)
        thawed = MappedPostingStore.backed_stores_thawed
        for query in (
            _query_for(wiki_indexes),
            ResolvedQuery(("overlayton",)),
            ResolvedQuery(("overlayton", "riverbed")),
        ):
            assert _all_algorithms(mapped, query) == _all_algorithms(
                oracle, query
            )
        assert MappedPostingStore.backed_stores_thawed == thawed
        assert mapped.store._backed


class TestCompaction:
    def test_compact_remaps_in_place(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        mapped = load_indexes(path)
        oracle = load_indexes(path)
        oracle.store.thaw()
        assert _apply_updates(mapped) == _apply_updates(oracle)
        store = mapped.store
        version_before = store.version
        result = compact_indexes(mapped, path)
        assert result["generation"] == 1
        assert result["sharded"] is None
        assert store.generation == 1
        assert store.version == version_before + 1
        assert store._backed
        assert store.overlay_words == 0
        assert isinstance(
            next(iter(store._posting_ids.values())), memoryview
        )
        for query in (
            _query_for(wiki_indexes),
            ResolvedQuery(("overlayton",)),
        ):
            assert _all_algorithms(mapped, query) == _all_algorithms(
                oracle, query
            )

    def test_compacted_file_reloads_identically(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        mapped = load_indexes(path)
        oracle = load_indexes(path)
        oracle.store.thaw()
        assert _apply_updates(mapped) == _apply_updates(oracle)
        compact_indexes(mapped, path)
        fresh = load_indexes(path)
        assert fresh.store.generation == 1
        assert describe_index_file(path)["generation"] == 1
        for query in (
            _query_for(wiki_indexes),
            ResolvedQuery(("overlayton",)),
        ):
            assert _all_algorithms(fresh, query) == _all_algorithms(
                oracle, query
            )

    def test_snapshot_pinned_across_compaction(self, wiki_indexes, tmp_path):
        """A snapshot taken before compaction keeps serving the old
        generation's answers after the re-map."""
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        mapped = load_indexes(path)
        query = _query_for(wiki_indexes)
        expected = _all_algorithms(wiki_indexes, query)
        snapshot = mapped.snapshot()
        _apply_updates(mapped)
        compact_indexes(mapped, path)
        assert _all_algorithms(snapshot, query) == expected

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_sharded_compaction_identical(
        self, wiki_indexes, tmp_path, num_shards
    ):
        """Sharded compaction preserves per-shard extents: the written
        file restores a partition whose coordinator answers match the
        heap oracle for the updated content."""
        from repro.search.engine import TableAnswerEngine
        from repro.search.sharding import ShardedSearchService

        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        mapped = load_indexes(path)
        oracle = load_indexes(path)
        oracle.store.thaw()
        assert _apply_updates(mapped) == _apply_updates(oracle)
        result = compact_indexes(mapped, path, num_shards=num_shards)
        sharded = result["sharded"]
        assert sharded is not None
        assert sharded.num_shards == num_shards
        assert sharded.store_version == mapped.store.version
        assert all(
            isinstance(shard.store, MappedPostingStore)
            for shard in sharded.shards
        )
        restored = load_sharded_indexes(path)
        assert restored.num_shards == num_shards
        engine = TableAnswerEngine(oracle.graph, indexes=oracle)
        service = ShardedSearchService(
            mapped, num_shards=num_shards, sharded=sharded
        )
        try:
            for terms in (
                list(_query_for(wiki_indexes)),
                ["overlayton"],
            ):
                for algorithm in ("pattern_enum", "linear"):
                    expected = engine.search(
                        terms, k=10, algorithm=algorithm
                    )
                    got = service.search(terms, k=10, algorithm=algorithm)
                    assert got.scores() == expected.scores()
                    assert got.pattern_keys() == expected.pattern_keys()
        finally:
            service.close()


class TestMigrationChains:
    def test_v1_to_v3(self, wiki_indexes, tmp_path):
        legacy = tmp_path / "legacy.idx"
        legacy.write_bytes(make_legacy_v1_bytes(wiki_indexes))
        migrated = load_indexes(legacy)
        fresh = tmp_path / "fresh.idx"
        save_indexes(migrated, fresh, version=3)
        reloaded = load_indexes(fresh)
        assert isinstance(reloaded.store, MappedPostingStore)
        query = _query_for(wiki_indexes)
        assert _all_algorithms(reloaded, query) == _all_algorithms(
            wiki_indexes, query
        )

    def test_v2_to_v3(self, wiki_indexes, tmp_path):
        v2 = tmp_path / "v2.idx"
        save_indexes(wiki_indexes, v2, version=2)
        migrated = load_indexes(v2)
        v3 = tmp_path / "v3.idx"
        save_indexes(migrated, v3, version=3)
        reloaded = load_indexes(v3)
        query = _query_for(wiki_indexes)
        assert _all_algorithms(reloaded, query) == _all_algorithms(
            wiki_indexes, query
        )

    def test_v3_to_v2(self, wiki_indexes, tmp_path):
        """Downgrade path: a mapped bundle re-serializes as v2 (lazy
        graph/lexicon/interner all materialize through their reducers)."""
        v3 = tmp_path / "v3.idx"
        save_indexes(wiki_indexes, v3, version=3)
        mapped = load_indexes(v3)
        v2 = tmp_path / "v2.idx"
        save_indexes(mapped, v2, version=2)
        reloaded = load_indexes(v2)
        assert not isinstance(reloaded.store, MappedPostingStore)
        query = _query_for(wiki_indexes)
        assert _all_algorithms(reloaded, query) == _all_algorithms(
            wiki_indexes, query
        )

    def test_sharded_v2_to_v3(self, wiki_indexes, tmp_path):
        sharded = partition_indexes(wiki_indexes, 2)
        v2 = tmp_path / "s2.idx"
        save_sharded_indexes(sharded, v2, version=2)
        restored = load_sharded_indexes(v2)
        v3 = tmp_path / "s3.idx"
        save_sharded_indexes(restored, v3, version=3)
        back = load_sharded_indexes(v3)
        assert back.num_shards == 2
        assert all(
            isinstance(shard.store, MappedPostingStore)
            for shard in back.shards
        )
        query = _query_for(wiki_indexes)
        assert _all_algorithms(back.base, query) == _all_algorithms(
            wiki_indexes, query
        )


class TestShardedV3:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_sharded_service_identical(
        self, wiki_indexes, tmp_path, num_shards
    ):
        """v3 sharded file through the fork-worker pool == unsharded."""
        from repro.search.engine import TableAnswerEngine
        from repro.search.sharding import ShardedSearchService

        path = tmp_path / f"s{num_shards}.idx"
        save_sharded_indexes(
            partition_indexes(wiki_indexes, num_shards), path, version=3
        )
        oracle = TableAnswerEngine(wiki_indexes.graph, indexes=wiki_indexes)
        service = ShardedSearchService.from_file(path)
        try:
            query = list(_query_for(wiki_indexes))
            for algorithm in ("pattern_enum", "linear"):
                expected = oracle.search(query, k=10, algorithm=algorithm)
                got = service.search(query, k=10, algorithm=algorithm)
                assert got.scores() == expected.scores()
                assert got.pattern_keys() == expected.pattern_keys()
                assert [
                    [tuple(c) for c in a.subtrees] for a in got.answers
                ] == [
                    [tuple(c) for c in a.subtrees]
                    for a in expected.answers
                ]
        finally:
            service.close()

    def test_sharded_file_loads_as_base(self, wiki_indexes, tmp_path):
        path = tmp_path / "s2.idx"
        save_sharded_indexes(partition_indexes(wiki_indexes, 2), path)
        base = load_indexes(path)
        assert base.num_entries == wiki_indexes.num_entries
        query = _query_for(wiki_indexes)
        assert _all_algorithms(base, query) == _all_algorithms(
            wiki_indexes, query
        )

    def test_single_file_rejected_by_sharded_loader(
        self, wiki_indexes, tmp_path
    ):
        path = tmp_path / "single.idx"
        save_indexes(wiki_indexes, path, version=3)
        with pytest.raises(PathIndexError, match="not a sharded index"):
            load_sharded_indexes(path)


class TestSnapshotSaveRejected:
    def test_save_through_snapshot_raises(self, wiki_indexes, tmp_path):
        snapshot = wiki_indexes.snapshot()
        with pytest.raises(PathIndexError, match="StoreSnapshot"):
            save_indexes(snapshot, tmp_path / "snap.idx", version=3)


class TestDescribeIndexFile:
    def test_v3_single(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        nbytes = save_indexes(wiki_indexes, path, version=3)
        info = describe_index_file(path)
        assert info["version"] == 3
        assert info["kind"] == "single"
        assert info["file_bytes"] == nbytes == os.path.getsize(path)
        assert info["num_entries"] == wiki_indexes.num_entries
        (base,) = info["stores"]
        assert base["name"] == "base"
        assert base["num_paths"] == wiki_indexes.store.num_paths
        assert base["num_postings"] == wiki_indexes.num_entries
        assert 0 < base["store_bytes"] <= info["file_bytes"]

    def test_v3_sharded(self, wiki_indexes, tmp_path):
        path = tmp_path / "s2.idx"
        save_sharded_indexes(partition_indexes(wiki_indexes, 2), path)
        info = describe_index_file(path)
        assert info["kind"] == "sharded"
        assert info["num_shards"] == 2
        names = [entry["name"] for entry in info["stores"]]
        assert names == ["base", "shard 0", "shard 1"]
        base, *shards = info["stores"]
        assert sum(s["num_postings"] for s in shards) == base["num_postings"]

    def test_v2_sharded(self, wiki_indexes, tmp_path):
        path = tmp_path / "s2v2.idx"
        save_sharded_indexes(
            partition_indexes(wiki_indexes, 2), path, version=2
        )
        info = describe_index_file(path)
        assert info["version"] == 2
        assert info["kind"] == "sharded"
        assert len(info["stores"]) == 3
        assert all(s["store_bytes"] > 0 for s in info["stores"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(PathIndexError, match="no such index file"):
            describe_index_file(tmp_path / "absent.idx")


class TestV3CrashSafety:
    def test_failed_save_preserves_existing(
        self, wiki_indexes, tmp_path, monkeypatch
    ):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        good = path.read_bytes()

        def boom(src, dst):
            raise OSError("disk detached mid-rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(PathIndexError, match="cannot write index"):
            save_indexes(wiki_indexes, path, version=3)
        monkeypatch.undo()
        assert path.read_bytes() == good
        assert [p for p in tmp_path.iterdir() if p.name != "wiki.idx"] == []


class TestCorruptV3Files:
    def test_truncated_after_magic(self, tmp_path):
        path = tmp_path / "trunc.idx"
        path.write_bytes(b"RPIXv3\x00\x00\x10")
        with pytest.raises(PathIndexError):
            load_indexes(path)

    def test_magic_with_garbage_header(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"RPIXv3\x00\x00" + b"\xff" * 64)
        with pytest.raises(PathIndexError):
            load_indexes(path)

    def test_wrong_format_name_in_header(self, wiki_indexes, tmp_path):
        path = tmp_path / "wiki.idx"
        save_indexes(wiki_indexes, path, version=3)
        raw = bytearray(path.read_bytes())
        # Corrupt the pickled header's format string in place.
        marker = FORMAT_NAME.encode()
        index = raw.find(marker)
        assert index > 0
        raw[index : index + len(marker)] = marker[::-1]
        bad = tmp_path / "bad.idx"
        bad.write_bytes(bytes(raw))
        with pytest.raises(PathIndexError):
            load_indexes(bad)
