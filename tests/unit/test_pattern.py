"""Path patterns and tree patterns (Section 2.2.2 definitions)."""

import pytest

from repro.core.errors import GraphError
from repro.core.pattern import PathPattern, TreePattern
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def graph():
    graph = KnowledgeGraph()
    graph.intern_type("Software")  # tid 0
    graph.intern_type("Company")  # tid 1
    graph.intern_type("Model")  # tid 2
    graph.intern_attr("Developer")  # aid 0
    graph.intern_attr("Revenue")  # aid 1
    graph.intern_attr("Genre")  # aid 2
    return graph


class TestPathPattern:
    def test_node_match_lengths(self):
        pattern = PathPattern((0, 0, 1), ends_at_edge=False)
        assert pattern.length == 2
        assert pattern.num_hops == 1
        assert pattern.root_type == 0
        assert pattern.node_types() == (0, 1)
        assert pattern.attr_types() == (0,)

    def test_single_node_pattern(self):
        pattern = PathPattern((0,), ends_at_edge=False)
        assert pattern.length == 1
        assert pattern.num_hops == 0

    def test_edge_match_counts_target(self):
        """Example 2.4: (Software)(Developer)(Company)(Revenue) has length 3."""
        pattern = PathPattern((0, 0, 1, 1), ends_at_edge=True)
        assert pattern.length == 3
        assert pattern.num_hops == 2
        assert pattern.matched_attr == 1

    def test_matched_attr_on_node_pattern_raises(self):
        pattern = PathPattern((0,), ends_at_edge=False)
        with pytest.raises(GraphError):
            _ = pattern.matched_attr

    def test_parity_validation(self):
        with pytest.raises(GraphError):
            PathPattern((0, 0), ends_at_edge=False)  # even, node match
        with pytest.raises(GraphError):
            PathPattern((0, 0, 1), ends_at_edge=True)  # odd, edge match
        with pytest.raises(GraphError):
            PathPattern((), ends_at_edge=False)

    def test_format(self, graph):
        pattern = PathPattern((0, 0, 1, 1), ends_at_edge=True)
        assert (
            pattern.format(graph)
            == "(Software) (Developer) (Company) (Revenue)"
        )

    def test_hashable_and_equal(self):
        a = PathPattern((0, 0, 1), False)
        b = PathPattern((0, 0, 1), False)
        c = PathPattern((0, 0, 1, 1), True)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestTreePattern:
    def test_height_is_max_path_length(self):
        tree = TreePattern(
            (
                PathPattern((0, 2, 2), False),  # length 2
                PathPattern((0,), False),  # length 1
                PathPattern((0, 0, 1, 1), True),  # length 3
            )
        )
        assert tree.height == 3
        assert tree.num_keywords == 3
        assert tree.root_type == 0

    def test_mismatched_roots_rejected(self):
        with pytest.raises(GraphError):
            TreePattern(
                (PathPattern((0,), False), PathPattern((1,), False))
            )

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            TreePattern(())

    def test_format_includes_keywords(self, graph):
        tree = TreePattern(
            (PathPattern((0,), False), PathPattern((0, 2, 2), False))
        )
        text = tree.format(graph, ("software", "database"))
        assert "'software': (Software)" in text
        assert "(Genre) (Model)" in text

    def test_format_without_query_labels_positions(self, graph):
        tree = TreePattern((PathPattern((0,), False),))
        assert tree.format(graph).startswith("w1:")

    def test_equality_by_value(self):
        a = TreePattern((PathPattern((0,), False),))
        b = TreePattern((PathPattern((0,), False),))
        assert a == b
        assert hash(a) == hash(b)
