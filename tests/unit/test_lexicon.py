"""GraphLexicon: match tables, similarities, synonym folding."""

import pytest

from repro.index.lexicon import GraphLexicon
from repro.kg.graph import KnowledgeGraph
from repro.kg.stemmer import stem
from repro.kg.synonyms import SynonymTable
from repro.kg.text import TextNormalizer


@pytest.fixture
def graph():
    graph = KnowledgeGraph()
    graph.add_node("Software", "SQL Server")  # 0
    graph.add_node("Company", "Microsoft")  # 1
    graph.add_node("Model", "Relational database")  # 2
    graph.add_edge(0, "Developer", 1)
    graph.add_edge(0, "Genre", 2)
    return graph


@pytest.fixture
def lexicon(graph):
    return GraphLexicon(graph)


class TestNodeMatches:
    def test_text_match_sim(self, lexicon):
        matches = dict(lexicon.node_matches(2))
        assert matches[stem("database")] == pytest.approx(0.5)
        assert matches[stem("relational")] == pytest.approx(0.5)

    def test_type_match_sim(self, lexicon):
        matches = dict(lexicon.node_matches(0))
        assert matches[stem("software")] == pytest.approx(1.0)

    def test_text_and_type_take_max(self):
        graph = KnowledgeGraph()
        # Node text "software suite" (sim 1/2) and type "Software" (sim 1).
        graph.add_node("Software", "software suite")
        lexicon = GraphLexicon(graph)
        assert dict(lexicon.node_matches(0))[stem("software")] == 1.0

    def test_sorted_and_deterministic(self, lexicon):
        matches = lexicon.node_matches(0)
        assert matches == sorted(matches)

    def test_node_sim_miss_is_zero(self, lexicon):
        assert lexicon.node_sim(0, "nonexistent") == 0.0


class TestAttrMatches:
    def test_attr_match(self, lexicon, graph):
        aid = graph.attr_id("Developer")
        matches = dict(lexicon.attr_matches(aid))
        assert matches[stem("developer")] == 1.0

    def test_attrs_with_word(self, lexicon, graph):
        hits = lexicon.attrs_with_word(stem("genre"))
        assert hits == {graph.attr_id("Genre"): 1.0}


class TestInverted:
    def test_nodes_with_word(self, lexicon):
        hits = lexicon.nodes_with_word(stem("database"))
        assert set(hits) == {2}

    def test_type_word_hits_all_nodes_of_type(self):
        graph = KnowledgeGraph()
        graph.add_node("Software", "A")
        graph.add_node("Software", "B")
        graph.add_node("Company", "C")
        lexicon = GraphLexicon(graph)
        assert set(lexicon.nodes_with_word(stem("software"))) == {0, 1}

    def test_vocabulary(self, lexicon):
        vocab = lexicon.vocabulary()
        assert stem("microsoft") in vocab
        assert stem("developer") in vocab

    def test_word_frequency(self, lexicon):
        assert lexicon.word_frequency(stem("microsoft")) == 1
        assert lexicon.word_frequency("zzz") == 0


class TestSynonyms:
    def test_document_filed_under_canonical(self):
        graph = KnowledgeGraph()
        graph.add_node("Movie", "great film")
        synonyms = SynonymTable([["movie", "film"]])
        lexicon = GraphLexicon(graph, synonyms=synonyms)
        # "film" appears in the text; entry also filed under canonical "movi".
        assert 0 in lexicon.nodes_with_word(stem("movie"))
        assert 0 in lexicon.nodes_with_word(stem("film"))

    def test_sim_uses_original_token_set(self):
        graph = KnowledgeGraph()
        # Neutral type: only the two-token *text* matches, so the synonym
        # key must inherit the text similarity 1/2, not 1.
        graph.add_node("Item", "great film")
        synonyms = SynonymTable([["movie", "film"]])
        lexicon = GraphLexicon(graph, synonyms=synonyms)
        assert lexicon.node_sim(0, stem("movie")) == pytest.approx(0.5)


class TestNormalizerChoice:
    def test_stopwords_respected(self):
        graph = KnowledgeGraph()
        graph.add_node("Book", "the art of war")
        with_stop = GraphLexicon(graph)
        assert stem("the") not in dict(with_stop.node_matches(0))
        without_stop = GraphLexicon(
            graph, TextNormalizer(stopwords=())
        )
        assert stem("the") in dict(without_stop.node_matches(0))

    def test_text_type_has_no_type_tokens(self):
        graph = KnowledgeGraph()
        graph.add_text_node("some value")
        lexicon = GraphLexicon(graph)
        # "text" (the reserved type name) must not match anything.
        assert lexicon.nodes_with_word("text") == {}
