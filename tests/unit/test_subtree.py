"""MatchPath, ValidSubtree, and the tree-validity check of combine_paths."""

import pytest

from repro.core.errors import GraphError
from repro.core.subtree import MatchPath, ValidSubtree, combine_paths
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def graph():
    """v0 --a0--> v1 --a1--> v2 ; v0 --a0--> v3 ; v3 --a1--> v2."""
    graph = KnowledgeGraph()
    for i in range(4):
        graph.add_node(f"T{i}", f"n{i}")
    graph.intern_attr("a0")
    graph.intern_attr("a1")
    graph.add_edge_typed(0, 0, 1)
    graph.add_edge_typed(1, 1, 2)
    graph.add_edge_typed(0, 0, 3)
    graph.add_edge_typed(3, 1, 2)
    return graph


class TestMatchPath:
    def test_node_match(self):
        path = MatchPath((0, 1, 2), (0, 1), matched_on_edge=False)
        assert path.root == 0
        assert path.num_nodes == 3
        assert path.match_node == 2
        assert path.end_node == 2
        assert list(path.edge_triples()) == [(0, 0, 1), (1, 1, 2)]

    def test_edge_match_scores_source_node(self):
        """Equation 5: an edge match uses the source node's PageRank."""
        path = MatchPath((0, 1, 2), (0, 1), matched_on_edge=True)
        assert path.match_node == 1
        assert path.num_nodes == 3  # target still counts in |T(w)|

    def test_single_node(self):
        path = MatchPath((5,), (), matched_on_edge=False)
        assert path.num_nodes == 1
        assert path.match_node == 5

    def test_validation(self):
        with pytest.raises(GraphError):
            MatchPath((), (), False)
        with pytest.raises(GraphError):
            MatchPath((0, 1), (), False)  # missing edge
        with pytest.raises(GraphError):
            MatchPath((0,), (), True)  # edge match needs an edge

    def test_pattern_derivation_node_match(self, graph):
        path = MatchPath((0, 1, 2), (0, 1), matched_on_edge=False)
        pattern = path.pattern(graph)
        assert pattern.labels == (
            graph.node_type(0), 0, graph.node_type(1), 1, graph.node_type(2)
        )
        assert not pattern.ends_at_edge
        assert pattern.length == 3

    def test_pattern_derivation_edge_match(self, graph):
        path = MatchPath((0, 1, 2), (0, 1), matched_on_edge=True)
        pattern = path.pattern(graph)
        assert pattern.labels == (
            graph.node_type(0), 0, graph.node_type(1), 1
        )
        assert pattern.ends_at_edge
        assert pattern.length == 3  # target node counted


class TestValidSubtree:
    def test_basics(self, graph):
        tree = ValidSubtree(
            (
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 1, 2), (0, 1), False),
            )
        )
        assert tree.root == 0
        assert tree.num_keywords == 2
        assert tree.node_set() == {0, 1, 2}
        assert tree.edge_set() == {(0, 0, 1), (1, 1, 2)}
        assert tree.height() == 3

    def test_mismatched_roots_rejected(self):
        with pytest.raises(GraphError):
            ValidSubtree(
                (
                    MatchPath((0,), (), False),
                    MatchPath((1,), (), False),
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            ValidSubtree(())

    def test_pattern(self, graph):
        tree = ValidSubtree(
            (
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 1, 2), (0, 1), True),
            )
        )
        pattern = tree.pattern(graph)
        assert pattern.num_keywords == 2
        assert pattern.height == 3

    def test_minimality_of_path_union(self, graph):
        tree = ValidSubtree(
            (
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 3), (0,), False),
            )
        )
        assert tree.is_minimal()

    def test_non_minimal_detected(self, graph):
        """A leaf hosting no keyword violates condition iii)."""
        tree = ValidSubtree(
            (
                # keyword maps to interior node 1 while leaf 2 hosts nothing
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 1, 2), (0, 1), False),
            )
        )
        # Here leaf 2 *does* host the second keyword: minimal.
        assert tree.is_minimal()
        shallow = ValidSubtree((MatchPath((0, 1), (0,), False),))
        # Craft a tree claiming only node 1, but containing edge to 2:
        hacked = ValidSubtree(
            (
                MatchPath((0, 1, 2), (0, 1), False),
                MatchPath((0, 1), (0,), False),
            )
        )
        assert hacked.is_minimal()  # leaf 2 hosts keyword 1
        assert shallow.is_minimal()


class TestCombinePaths:
    def test_combines_shared_root(self, graph):
        tree = combine_paths(
            [
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 3), (0,), False),
            ]
        )
        assert tree is not None
        assert tree.node_set() == {0, 1, 3}

    def test_rejects_two_parents(self, graph):
        """v2 reachable via v1 and via v3: the union is not a tree."""
        tree = combine_paths(
            [
                MatchPath((0, 1, 2), (0, 1), False),
                MatchPath((0, 3, 2), (0, 1), False),
            ]
        )
        assert tree is None

    def test_rejects_different_roots(self, graph):
        tree = combine_paths(
            [
                MatchPath((0, 1), (0,), False),
                MatchPath((3, 2), (1,), False),
            ]
        )
        assert tree is None

    def test_rejects_edge_back_into_root(self):
        tree = combine_paths(
            [
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 1, 0), (0, 1), False),
            ]
        )
        assert tree is None

    def test_identical_paths_fine(self, graph):
        """Two keywords matching along the same path is a valid tree."""
        path = MatchPath((0, 1, 2), (0, 1), False)
        tree = combine_paths([path, path])
        assert tree is not None
        assert tree.node_set() == {0, 1, 2}

    def test_shared_prefix_fine(self, graph):
        tree = combine_paths(
            [
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 1, 2), (0, 1), False),
            ]
        )
        assert tree is not None

    def test_empty_input(self):
        assert combine_paths([]) is None

    def test_same_parent_different_attr_rejected(self):
        """Parallel edges u->v with different attrs cannot both be tree edges."""
        graph = KnowledgeGraph()
        graph.add_node("A", "a")
        graph.add_node("B", "b")
        graph.intern_attr("x")
        graph.intern_attr("y")
        graph.add_edge_typed(0, 0, 1)
        graph.add_edge_typed(0, 1, 1)
        tree = combine_paths(
            [
                MatchPath((0, 1), (0,), False),
                MatchPath((0, 1), (1,), False),
            ]
        )
        assert tree is None
