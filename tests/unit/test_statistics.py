"""Graph statistics and longest-path bound."""

from repro.kg.graph import KnowledgeGraph
from repro.kg.statistics import compute_statistics, longest_path_length
from repro.datasets.imdb import generate_imdb_graph, ImdbConfig


class TestLongestPath:
    def test_empty(self):
        assert longest_path_length(KnowledgeGraph()) == 0

    def test_single_node(self):
        graph = KnowledgeGraph()
        graph.add_node("T", "x")
        assert longest_path_length(graph) == 1

    def test_chain(self):
        graph = KnowledgeGraph()
        nodes = [graph.add_node("T", f"n{i}") for i in range(4)]
        for i in range(3):
            graph.add_edge(nodes[i], "next", nodes[i + 1])
        assert longest_path_length(graph) == 4

    def test_cycle_falls_back_to_node_count(self):
        graph = KnowledgeGraph()
        a = graph.add_node("T", "a")
        b = graph.add_node("T", "b")
        graph.add_edge(a, "next", b)
        graph.add_edge(b, "next", a)
        assert longest_path_length(graph) == 2

    def test_diamond(self):
        graph = KnowledgeGraph()
        a, b, c, d = (graph.add_node("T", s) for s in "abcd")
        graph.add_edge(a, "x", b)
        graph.add_edge(a, "y", c)
        graph.add_edge(b, "x", d)
        graph.add_edge(c, "y", d)
        assert longest_path_length(graph) == 3

    def test_imdb_has_paper_property(self):
        """Paper: IMDB's graph "contains only paths of length at most three"."""
        graph = generate_imdb_graph(ImdbConfig(num_movies=40, num_people=50))
        assert longest_path_length(graph) <= 3


class TestStatistics:
    def test_counts(self):
        graph = KnowledgeGraph()
        a = graph.add_node("Software", "X")
        b = graph.add_node("Company", "Y")
        t = graph.add_text_node("some value")
        graph.add_edge(a, "Developer", b)
        graph.add_edge(b, "Revenue", t)
        stats = compute_statistics(graph)
        assert stats.num_nodes == 3
        assert stats.num_entity_nodes == 2
        assert stats.num_text_nodes == 1
        assert stats.num_edges == 2
        assert stats.max_out_degree == 1
        assert stats.type_histogram["Software"] == 1

    def test_format_mentions_key_counts(self):
        graph = KnowledgeGraph()
        graph.add_node("T", "x")
        text = compute_statistics(graph).format()
        assert "nodes" in text
        assert "types" in text

    def test_empty_graph(self):
        stats = compute_statistics(KnowledgeGraph())
        assert stats.num_nodes == 0
        assert stats.mean_out_degree == 0.0
