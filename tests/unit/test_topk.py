"""Bounded top-k queue: ordering, ties, thresholds, properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SearchError
from repro.core.topk import TopKQueue


class TestBasics:
    def test_keeps_best_k(self):
        queue = TopKQueue(2)
        for score, name in [(1.0, "a"), (3.0, "b"), (2.0, "c"), (0.5, "d")]:
            queue.push(score, name)
        assert queue.ranked() == [(3.0, "b"), (2.0, "c")]
        assert queue.items() == ["b", "c"]

    def test_under_capacity(self):
        queue = TopKQueue(5)
        queue.push(1.0, "a")
        assert len(queue) == 1
        assert not queue.is_full
        assert queue.threshold() == float("-inf")

    def test_k_must_be_positive(self):
        with pytest.raises(SearchError):
            TopKQueue(0)

    def test_min_score(self):
        queue = TopKQueue(3)
        with pytest.raises(SearchError):
            queue.min_score()
        queue.push(2.0, "a")
        queue.push(5.0, "b")
        assert queue.min_score() == 2.0

    def test_push_returns_retained(self):
        queue = TopKQueue(1)
        assert queue.push(1.0, "a") is True
        assert queue.push(0.5, "b") is False
        assert queue.push(2.0, "c") is True


class TestTies:
    def test_earlier_insertion_wins_tie(self):
        queue = TopKQueue(1)
        queue.push(1.0, "first")
        queue.push(1.0, "second")
        assert queue.items() == ["first"]

    def test_ranked_orders_ties_by_insertion(self):
        queue = TopKQueue(3)
        queue.push(1.0, "a")
        queue.push(1.0, "b")
        queue.push(1.0, "c")
        assert queue.items() == ["a", "b", "c"]

    def test_would_accept_is_conservative(self):
        """Equal-to-threshold scores may displace a retained item when tie
        keys are in play, so would_accept answers True for them; strictly
        lower scores are definitively rejected."""
        queue = TopKQueue(1)
        queue.push(1.0, "a")
        assert queue.would_accept(1.0)
        assert queue.would_accept(1.1)
        assert not queue.would_accept(0.9)


class TestTieKeys:
    def test_smaller_tie_key_wins_retention(self):
        queue = TopKQueue(1)
        queue.push(1.0, "bigger", tie_key=(2,))
        assert queue.push(1.0, "smaller", tie_key=(1,)) is True
        assert queue.items() == ["smaller"]

    def test_larger_tie_key_rejected(self):
        queue = TopKQueue(1)
        queue.push(1.0, "small", tie_key=(1,))
        assert queue.push(1.0, "big", tie_key=(2,)) is False
        assert queue.items() == ["small"]

    def test_ranked_orders_by_tie_key(self):
        queue = TopKQueue(3)
        queue.push(1.0, "c", tie_key=(3,))
        queue.push(1.0, "a", tie_key=(1,))
        queue.push(1.0, "b", tie_key=(2,))
        assert queue.items() == ["a", "b", "c"]

    def test_retention_independent_of_insertion_order(self):
        """The property the search engines rely on: the retained set for
        tied scores depends only on tie keys, not enumeration order."""
        import itertools

        entries = [((1,), "a"), ((2,), "b"), ((3,), "c")]
        expected = None
        for permutation in itertools.permutations(entries):
            queue = TopKQueue(2)
            for tie_key, name in permutation:
                queue.push(1.0, name, tie_key=tie_key)
            if expected is None:
                expected = queue.items()
            assert queue.items() == expected == ["a", "b"]

    def test_score_still_dominates(self):
        queue = TopKQueue(1)
        queue.push(1.0, "low", tie_key=(1,))
        queue.push(2.0, "high", tie_key=(9,))
        assert queue.items() == ["high"]


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=50),
    st.integers(min_value=1, max_value=10),
)
def test_matches_sorted_reference(scores, k):
    """The queue retains exactly the k largest scores."""
    queue = TopKQueue(k)
    for i, score in enumerate(scores):
        queue.push(score, i)
    expected = sorted(scores, reverse=True)[:k]
    assert [s for s, _item in queue.ranked()] == expected


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=8),
)
def test_threshold_is_kth_best(scores, k):
    queue = TopKQueue(k)
    for i, score in enumerate(scores):
        queue.push(score, i)
    if len(scores) >= k:
        assert queue.threshold() == sorted(scores, reverse=True)[k - 1]
    else:
        assert queue.threshold() == float("-inf")


@given(st.lists(st.integers(min_value=0, max_value=5), max_size=40))
def test_tie_break_is_first_seen(values):
    """With many ties, retained payloads are the earliest pushed ones."""
    queue = TopKQueue(3)
    for i, value in enumerate(values):
        queue.push(float(value), i)
    ranked = queue.ranked()
    # Reference: stable sort by (-score, index).
    expected = sorted(
        ((float(v), i) for i, v in enumerate(values)),
        key=lambda pair: (-pair[0], pair[1]),
    )[: min(3, len(values))]
    assert ranked == expected
