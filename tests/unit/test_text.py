"""Tokenizer and query normalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.kg.text import (
    DEFAULT_NORMALIZER,
    DEFAULT_STOPWORDS,
    TextNormalizer,
    tokenize,
)


class TestTokenize:
    def test_basic(self):
        assert tokenize("Bill Gates") == ["bill", "gates"]

    def test_currency_and_digits(self):
        assert tokenize("US$ 77 billion") == ["us", "77", "billion"]

    def test_hyphen_compound_is_one_token(self):
        assert tokenize("O-R database") == ["o-r", "database"]

    def test_leading_trailing_hyphens_not_joined(self):
        assert tokenize("-pre post-") == ["pre", "post"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   !!!  ") == []

    def test_punctuation_splits(self):
        assert tokenize("C++, C#; Java.") == ["c", "c", "java"]


class TestNormalizer:
    def test_stems_by_default(self):
        assert DEFAULT_NORMALIZER.tokens("databases") == ["databas"]

    def test_stopwords_dropped(self):
        tokens = DEFAULT_NORMALIZER.tokens("the revenue of the company")
        assert "the" not in tokens
        assert "of" not in tokens

    def test_no_stemming_mode(self):
        normalizer = TextNormalizer(use_stemming=False, stopwords=())
        assert normalizer.tokens("Databases") == ["databases"]

    def test_token_set(self):
        assert DEFAULT_NORMALIZER.token_set("company company") == {"compani"}

    def test_duplicates_preserved_in_tokens(self):
        assert DEFAULT_NORMALIZER.tokens("big big city") == [
            "big",
            "big",
            "citi",
        ]


class TestParseQuery:
    def test_string_query(self):
        words = DEFAULT_NORMALIZER.parse_query("database software")
        assert words == ("databas", "softwar")

    def test_sequence_query(self):
        words = DEFAULT_NORMALIZER.parse_query(["Mel Gibson", "movies"])
        assert words == ("mel", "gibson", "movi")

    def test_duplicates_collapsed_first_seen_order(self):
        words = DEFAULT_NORMALIZER.parse_query("movie film movie")
        assert words == ("movi", "film")

    def test_empty_query_raises(self):
        with pytest.raises(QueryError):
            DEFAULT_NORMALIZER.parse_query("")
        with pytest.raises(QueryError):
            DEFAULT_NORMALIZER.parse_query("   the of   ")

    def test_non_string_item_raises(self):
        with pytest.raises(QueryError):
            DEFAULT_NORMALIZER.parse_query(["ok", 42])

    def test_stopword_only_words_removed(self):
        words = DEFAULT_NORMALIZER.parse_query("the company")
        assert words == ("compani",)


@given(st.text(max_size=60))
def test_tokens_always_lowercase_nonempty(text):
    for token in DEFAULT_NORMALIZER.tokens(text):
        assert token
        assert token == token.lower()


@given(
    st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_parse_query_output_is_clean(words):
    """Parsed keywords are distinct, non-empty, normalized tokens.

    Note: a *stemmed* keyword may coincide with a stopword ("ase" stems to
    "as") — stopwords are filtered on surface tokens, before stemming, so
    no stopword assertion is made on the output.
    """
    try:
        parsed = DEFAULT_NORMALIZER.parse_query(words)
    except QueryError:
        return  # everything was a stopword — fine
    assert len(set(parsed)) == len(parsed)
    for keyword in parsed:
        assert keyword


def test_default_stopwords_are_lowercase():
    assert all(w == w.lower() for w in DEFAULT_STOPWORDS)
