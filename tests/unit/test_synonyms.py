"""Synonym table: canonicalization, expansion, and the no-re-stem rule."""

from repro.kg.stemmer import stem
from repro.kg.synonyms import EMPTY_SYNONYMS, SynonymTable


class TestGroups:
    def test_first_word_is_canonical(self):
        table = SynonymTable([["movie", "film", "picture"]])
        assert table.canonical("film") == stem("movie")
        assert table.canonical("pictures") == stem("movie")

    def test_identity_for_unknown(self):
        table = SynonymTable([["movie", "film"]])
        assert table.canonical("company") == "company"

    def test_group_of(self):
        table = SynonymTable([["movie", "film"]])
        assert table.group_of("film") == {stem("movie"), stem("film")}
        assert table.group_of("novel") == {"novel"}

    def test_overlapping_groups_merge(self):
        table = SynonymTable()
        table.add_group(["movie", "film"])
        table.add_group(["film", "picture"])
        assert table.canonical("picture") == stem("movie")

    def test_empty_group_ignored(self):
        table = SynonymTable()
        table.add_group([])
        assert len(table) == 0

    def test_from_mapping(self):
        table = SynonymTable.from_mapping({"film": "movie", "auto": "car"})
        assert table.canonical("film") == stem("movie")
        assert table.canonical("auto") == stem("car")

    def test_len_counts_registered_words(self):
        table = SynonymTable([["movie", "film"]])
        assert len(table) == 2


class TestExpansions:
    def test_unregistered_token_untouched(self):
        """Critical: already-stemmed index tokens must not be re-stemmed.

        Porter is not idempotent — stem("databas") == "databa" — so a
        second stemming pass would corrupt index keys.
        """
        assert EMPTY_SYNONYMS.expansions("databas") == ["databas"]
        assert EMPTY_SYNONYMS.canonical("databas") == "databas"

    def test_registered_token_files_under_both(self):
        table = SynonymTable([["movie", "film"]])
        assert set(table.expansions("film")) == {stem("film"), stem("movie")}

    def test_canonical_word_expands_to_itself(self):
        table = SynonymTable([["movie", "film"]])
        assert table.expansions(stem("movie")) == [stem("movie")]

    def test_raw_surface_form_falls_back_to_stemming(self):
        table = SynonymTable([["movie", "film"]])
        assert table.canonical("films") == stem("movie")


class TestEndToEnd:
    def test_query_synonym_reaches_indexed_text(self):
        """A query word absent from the text matches via its synonym."""
        from repro.index.builder import build_indexes
        from repro.kg.graph import KnowledgeGraph
        from repro.search.pattern_enum import pattern_enum_search

        graph = KnowledgeGraph()
        movie = graph.add_node("Movie", "Braveheart")
        person = graph.add_node("Person", "Mel Gibson")
        graph.add_edge(movie, "Director", person)
        synonyms = SynonymTable([["movie", "film"]])
        indexes = build_indexes(graph, d=2, synonyms=synonyms)

        result = pattern_enum_search(indexes, "film gibson", k=5)
        assert result.num_answers >= 1
        assert result.answers[0].num_subtrees == 1
