"""The v2 columnar index format: round-trips, v1 migration, crash safety.

The legacy (v1) format was a wholesale object-graph pickle of
:class:`PathIndexes` with one ``PathEntry`` object per posting inside
triply-nested dicts; :func:`make_legacy_v1_bytes` reconstructs that exact
layout so we can (a) prove ``load_indexes`` still reads v1 files and
(b) measure the v2 size win against a faithful v1 baseline.
"""

import os
import pickle

import pytest

from repro.core.errors import PathIndexError
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import PathIndexes, ResolvedQuery, build_indexes
from repro.index.interner import PatternInterner
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex
from repro.index.serialize import (
    FORMAT_NAME,
    load_indexes,
    save_indexes,
)
from repro.index.store import PostingStore
from repro.kg.graph import KnowledgeGraph
from repro.search.baseline import baseline_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search

WIKI_CONFIG = WikiConfig(
    num_entities=400, num_types=16, num_attrs=24, vocabulary_size=160, seed=29
)


def make_legacy_v1_bytes(indexes: PathIndexes) -> bytes:
    """Serialize ``indexes`` exactly as the pre-columnar code did.

    Rebuilds the seed attribute layout — ``word -> pid -> root ->
    [PathEntry]`` for the pattern-first index, ``word -> root -> pid ->
    [PathEntry]`` for the root-first one, entry objects shared between the
    two — and pickles it inside a version-1 envelope.
    """
    pf_data, rf_data, rf_counts = {}, {}, {}
    for word, leaves in indexes.store.groups().items():
        for pid, root, postings in leaves:
            entries = list(postings)  # one materialized list, shared
            pf_data.setdefault(word, {}).setdefault(pid, {})[root] = entries
            rf_data.setdefault(word, {}).setdefault(root, {})[pid] = entries
    for word, by_root in rf_data.items():
        rf_counts[word] = {
            root: sum(len(entries) for entries in by_pattern.values())
            for root, by_pattern in by_root.items()
        }
    pattern_first = PatternFirstIndex.__new__(PatternFirstIndex)
    pattern_first.__dict__.update(
        {
            "interner": indexes.interner,
            "_data": pf_data,
            "_by_root_type": {},
            "_finalized": True,
        }
    )
    root_first = RootFirstIndex.__new__(RootFirstIndex)
    root_first.__dict__.update(
        {
            "interner": indexes.interner,
            "_data": rf_data,
            "_counts": rf_counts,
            "_finalized": True,
        }
    )
    payload = PathIndexes.__new__(PathIndexes)
    payload.__dict__.update(
        {
            "graph": indexes.graph,
            "d": indexes.d,
            "normalizer": indexes.normalizer,
            "lexicon": indexes.lexicon,
            "interner": indexes.interner,
            "pattern_first": pattern_first,
            "root_first": root_first,
            "pagerank_scores": indexes.pagerank_scores,
            "build_seconds": indexes.build_seconds,
            "synonyms": indexes.synonyms,
            "_notes": [],
        }
    )
    envelope = {
        "format": FORMAT_NAME,
        "version": 1,
        "d": indexes.d,
        "num_entries": indexes.num_entries,
        "payload": payload,
    }
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


@pytest.fixture(scope="module")
def wiki_indexes_small():
    graph = generate_wiki_graph(WIKI_CONFIG)
    return build_indexes(graph, d=3)


def _query_for(indexes, num_words=2):
    """A resolved query of the index's most frequent words."""
    words = sorted(
        indexes.store.words(),
        key=lambda w: (-indexes.store.num_postings(w), w),
    )[:num_words]
    return ResolvedQuery(tuple(words))


def _all_algorithms(indexes, query, k=10):
    """Top-k output of all four search algorithms, normalized for compare."""
    results = {
        "pattern_enum": pattern_enum_search(indexes, query, k=k),
        "linear": linear_topk_search(indexes, query, k=k),
        "linear_topk": linear_topk_search(
            indexes, query, k=k, sampling_threshold=0, sampling_rate=0.5,
            seed=7,
        ),
        "baseline": baseline_search(indexes, query, k=k),
    }
    return {
        name: [
            (answer.pattern_key, answer.score, answer.num_subtrees)
            for answer in result.answers
        ]
        for name, result in results.items()
    }


class TestV2RoundTrip:
    def test_search_identical_after_roundtrip(
        self, wiki_indexes_small, tmp_path
    ):
        """All four algorithms return identical top-k through save/load."""
        indexes = wiki_indexes_small
        path = tmp_path / "wiki.idx"
        save_indexes(indexes, path)
        loaded = load_indexes(path)
        assert loaded.d == indexes.d
        assert loaded.num_entries == indexes.num_entries
        assert loaded.store.num_paths == indexes.store.num_paths
        query = _query_for(indexes)
        assert _all_algorithms(loaded, query) == _all_algorithms(
            indexes, query
        )

    def test_posting_multiset_preserved(self, wiki_indexes_small, tmp_path):
        indexes = wiki_indexes_small
        path = tmp_path / "wiki.idx"
        save_indexes(indexes, path)
        loaded = load_indexes(path)
        original = sorted(
            (w, pid, e) for w, pid, e in indexes.root_first.iter_entries()
        )
        restored = sorted(
            (w, pid, e) for w, pid, e in loaded.root_first.iter_entries()
        )
        assert original == restored

    def test_path_counts_preserved(self, wiki_indexes_small, tmp_path):
        indexes = wiki_indexes_small
        path = tmp_path / "wiki.idx"
        save_indexes(indexes, path)
        loaded = load_indexes(path)
        for word in indexes.root_first.words():
            for root in indexes.root_first.roots(word):
                assert loaded.root_first.path_count(
                    word, root
                ) == indexes.root_first.path_count(word, root)


class TestV1Migration:
    def test_loads_legacy_file(self, wiki_indexes_small, tmp_path):
        indexes = wiki_indexes_small
        path = tmp_path / "legacy.idx"
        path.write_bytes(make_legacy_v1_bytes(indexes))
        migrated = load_indexes(path)
        assert migrated.num_entries == indexes.num_entries
        assert migrated.store.num_paths == indexes.store.num_paths
        query = _query_for(indexes)
        assert _all_algorithms(migrated, query) == _all_algorithms(
            indexes, query
        )

    def test_v1_then_v2_roundtrip(self, wiki_indexes_small, tmp_path):
        """Migrating v1 and re-saving as v2 loses nothing."""
        indexes = wiki_indexes_small
        legacy = tmp_path / "legacy.idx"
        legacy.write_bytes(make_legacy_v1_bytes(indexes))
        migrated = load_indexes(legacy)
        fresh = tmp_path / "fresh.idx"
        save_indexes(migrated, fresh)
        reloaded = load_indexes(fresh)
        query = _query_for(indexes)
        assert _all_algorithms(reloaded, query) == _all_algorithms(
            indexes, query
        )

    def test_corrupt_v1_payload_rejected(self, tmp_path):
        envelope = {
            "format": FORMAT_NAME,
            "version": 1,
            "num_entries": 0,
            "payload": {"not": "indexes"},
        }
        path = tmp_path / "bad.idx"
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PathIndexError):
            load_indexes(path)


class TestSizeWin:
    def test_v2_at_least_2x_smaller_than_v1(
        self, wiki_indexes_small, tmp_path
    ):
        """Acceptance: the wiki synthetic d=3 index shrinks >= 2x."""
        indexes = wiki_indexes_small
        v1_bytes = len(make_legacy_v1_bytes(indexes))
        v2_bytes = save_indexes(indexes, tmp_path / "wiki.idx", version=2)
        assert v2_bytes * 2 <= v1_bytes, (
            f"v2 {v2_bytes} bytes vs v1 {v1_bytes}: "
            f"only {v1_bytes / v2_bytes:.2f}x"
        )


class TestCrashSafety:
    def _small_indexes(self):
        graph = KnowledgeGraph()
        software = graph.add_node("Software", "SQL Server")
        company = graph.add_node("Company", "Microsoft")
        graph.add_edge(software, "Developer", company)
        return build_indexes(graph, d=2)

    def test_failed_save_preserves_existing_file(self, tmp_path, monkeypatch):
        indexes = self._small_indexes()
        path = tmp_path / "index.bin"
        save_indexes(indexes, path)
        good = path.read_bytes()

        def boom(src, dst):
            raise OSError("disk detached mid-rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(PathIndexError, match="cannot write index"):
            save_indexes(indexes, path)
        assert path.read_bytes() == good, "interrupted save corrupted file"
        leftovers = [p for p in tmp_path.iterdir() if p.name != "index.bin"]
        assert leftovers == [], f"temp files left behind: {leftovers}"

    def test_successful_save_leaves_no_temp_files(self, tmp_path):
        indexes = self._small_indexes()
        path = tmp_path / "index.bin"
        save_indexes(indexes, path)
        assert [p.name for p in tmp_path.iterdir()] == ["index.bin"]
        assert load_indexes(path).num_entries == indexes.num_entries


class TestStorePayload:
    def test_store_payload_roundtrip(self, wiki_indexes_small):
        store = wiki_indexes_small.store
        payload = store.to_payload(wiki_indexes_small.pagerank_scores)
        assert payload["prs"] is None, "pr column should be derivable"
        restored = PostingStore.from_payload(
            store.interner, payload, wiki_indexes_small.pagerank_scores
        )
        assert restored.num_paths == store.num_paths
        assert restored.num_postings() == store.num_postings()
        for word in store.words():
            assert restored._posting_ids[word] == store._posting_ids[word]
            assert restored._posting_sims[word] == store._posting_sims[word]
        for path_id in range(store.num_paths):
            assert restored.path_nodes(path_id) == store.path_nodes(path_id)
            assert restored.path_attrs(path_id) == store.path_attrs(path_id)
            assert restored.path_pr(path_id) == store.path_pr(path_id)

    def test_inconsistent_pr_kept_explicitly(self):
        """A store whose pr terms don't match PageRank keeps its pr column."""
        interner = PatternInterner()
        store = PostingStore(interner)
        pid = interner.intern((0,), ends_at_edge=False)
        store.add_path((0,), (), False, pid, 0.75)
        store.add_posting("word", 0, 1.0)
        payload = store.to_payload(pagerank_scores=[0.5])
        assert payload["prs"] is not None
        restored = PostingStore.from_payload(interner, payload, [0.5])
        assert restored.path_pr(0) == 0.75

    def test_elided_pr_requires_pagerank(self, wiki_indexes_small):
        store = wiki_indexes_small.store
        payload = store.to_payload(wiki_indexes_small.pagerank_scores)
        with pytest.raises(PathIndexError):
            PostingStore.from_payload(store.interner, payload)
