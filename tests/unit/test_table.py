"""Table composition: Figure 3 semantics, column dedup, renderers."""

import pytest

from repro.core.subtree import MatchPath, ValidSubtree
from repro.core.table import compose_table
from repro.datasets.example import (
    EXAMPLE_NORMALIZER,
    EXAMPLE_QUERY,
    example_graph_with_nodes,
)
from repro.index.builder import build_indexes
from repro.kg.pagerank import uniform_scores
from repro.search.pattern_enum import pattern_enum_search


@pytest.fixture(scope="module")
def figure3_table():
    graph, _nodes = example_graph_with_nodes()
    indexes = build_indexes(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )
    result = pattern_enum_search(indexes, EXAMPLE_QUERY, k=1)
    return graph, result.answers[0].to_table(graph)


class TestFigure3:
    def test_headers(self, figure3_table):
        _graph, table = figure3_table
        assert table.headers() == ["Software", "Model", "Company", "Revenue"]

    def test_rows(self, figure3_table):
        _graph, table = figure3_table
        assert sorted(table.rows) == sorted(
            [
                ["SQL Server", "Relational database", "Microsoft", "US$ 77 billion"],
                ["Oracle DB", "O-R database", "Oracle Corp", "US$ 37 billion"],
            ]
        )

    def test_root_column_deduplicated(self, figure3_table):
        """Four keywords but the shared root yields one Software column."""
        _graph, table = figure3_table
        assert table.num_columns == 4

    def test_qualified_names(self, figure3_table):
        _graph, table = figure3_table
        qualified = [column.qualified_name for column in table.columns]
        assert "Software" in qualified
        assert "Software.Genre.Model" in qualified
        assert "Company.Revenue" in qualified

    def test_to_dicts(self, figure3_table):
        _graph, table = figure3_table
        dicts = table.to_dicts()
        assert {"SQL Server", "Oracle DB"} == {d["Software"] for d in dicts}

    def test_ascii_render(self, figure3_table):
        _graph, table = figure3_table
        text = table.to_ascii()
        assert "SQL Server" in text
        assert "Software" in text
        assert "|" in text

    def test_markdown_render(self, figure3_table):
        _graph, table = figure3_table
        markdown = table.to_markdown()
        assert markdown.startswith("| Software |")
        assert "| --- |" in markdown.splitlines()[1]


class TestRenderLimits:
    def test_ascii_truncates(self, figure3_table):
        _graph, table = figure3_table
        text = table.to_ascii(max_rows=1)
        assert "more rows" in text

    def test_markdown_truncates(self, figure3_table):
        _graph, table = figure3_table
        assert "more rows" in table.to_markdown(max_rows=1)


class TestDivergentPrefix:
    def test_shared_prefix_divergent_nodes_merge_cell(self):
        """Two keyword paths with identical pattern prefixes may bind
        different nodes in one subtree; the cell then holds both values."""
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        root = graph.add_node("R", "root")
        left = graph.add_node("M", "leftword common")
        right = graph.add_node("M", "rightword common")
        graph.add_edge(root, "Via", left)
        graph.add_edge(root, "Via", right)
        indexes = build_indexes(graph, d=2)
        result = pattern_enum_search(indexes, "leftword rightword", k=5)
        assert result.num_answers == 1
        table = result.answers[0].to_table(graph)
        merged = [cell for row in table.rows for cell in row if " | " in cell]
        assert merged, "expected a merged multivalued cell"
        assert any(column.multivalued for column in table.columns)

    def test_duplicate_headers_qualified(self):
        """Same type at two positions: headers fall back to qualified names."""
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        a = graph.add_node("Company", "Acme alphaword")
        b = graph.add_node("Company", "Beta betaword")
        graph.add_edge(a, "Parent", b)
        indexes = build_indexes(graph, d=2)
        result = pattern_enum_search(indexes, "alphaword betaword", k=5)
        table = result.answers[0].to_table(graph)
        assert len(set(table.headers())) == len(table.headers())


class TestComposeDirect:
    def test_empty_subtree_list(self):
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        node = graph.add_node("T", "solo")
        path = MatchPath((node,), (), False)
        tree = ValidSubtree((path,))
        pattern = tree.pattern(graph)
        table = compose_table(pattern, [], graph)
        assert table.num_rows == 0
        assert table.headers() == ["T"]

    def test_single_node_table(self):
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        node = graph.add_node("T", "solo")
        tree = ValidSubtree((MatchPath((node,), (), False),))
        table = compose_table(tree.pattern(graph), [tree], graph, score=1.5)
        assert table.rows == [["solo"]]
        assert table.score == 1.5
