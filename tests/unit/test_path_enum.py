"""Bounded simple-path enumeration (forward and reverse)."""

import pytest

from repro.core.errors import PathIndexError
from repro.index.path_enum import (
    count_paths,
    interleaved_labels,
    iter_all_paths,
    iter_paths_from,
    iter_reverse_paths_to,
)
from repro.kg.graph import KnowledgeGraph


@pytest.fixture
def diamond():
    """0 -> 1 -> 3, 0 -> 2 -> 3 (distinct attrs per edge)."""
    graph = KnowledgeGraph()
    for i in range(4):
        graph.add_node("T", f"n{i}")
    graph.add_edge(0, "a", 1)
    graph.add_edge(0, "b", 2)
    graph.add_edge(1, "c", 3)
    graph.add_edge(2, "d", 3)
    return graph


@pytest.fixture
def cycle():
    graph = KnowledgeGraph()
    for i in range(3):
        graph.add_node("T", f"n{i}")
    graph.add_edge(0, "x", 1)
    graph.add_edge(1, "x", 2)
    graph.add_edge(2, "x", 0)
    return graph


class TestForward:
    def test_single_node_path_always_included(self, diamond):
        paths = list(iter_paths_from(diamond, 3, max_nodes=3))
        assert paths == [((3,), ())]

    def test_depth_limit(self, diamond):
        paths = {nodes for nodes, _attrs in iter_paths_from(diamond, 0, 2)}
        assert paths == {(0,), (0, 1), (0, 2)}

    def test_full_depth(self, diamond):
        paths = {nodes for nodes, _attrs in iter_paths_from(diamond, 0, 3)}
        assert paths == {(0,), (0, 1), (0, 2), (0, 1, 3), (0, 2, 3)}

    def test_attrs_align_with_nodes(self, diamond):
        for nodes, attrs in iter_paths_from(diamond, 0, 3):
            assert len(attrs) == len(nodes) - 1

    def test_simple_paths_only_on_cycle(self, cycle):
        paths = {nodes for nodes, _attrs in iter_paths_from(cycle, 0, 10)}
        assert paths == {(0,), (0, 1), (0, 1, 2)}  # never revisits 0

    def test_bad_max_nodes(self, diamond):
        with pytest.raises(PathIndexError):
            list(iter_paths_from(diamond, 0, 0))

    def test_iter_all_and_count(self, diamond):
        all_paths = list(iter_all_paths(diamond, 2))
        assert count_paths(diamond, 2) == len(all_paths)
        assert len(all_paths) == 4 + 4  # 4 singletons + 4 edges

    def test_deterministic_order(self, diamond):
        first = list(iter_paths_from(diamond, 0, 3))
        second = list(iter_paths_from(diamond, 0, 3))
        assert first == second


class TestReverse:
    def test_reverse_orientation(self, diamond):
        paths = {
            nodes for nodes, _attrs in iter_reverse_paths_to(diamond, 3, 3)
        }
        assert paths == {(3,), (1, 3), (2, 3), (0, 1, 3), (0, 2, 3)}

    def test_reverse_attrs_forward_oriented(self, diamond):
        for nodes, attrs in iter_reverse_paths_to(diamond, 3, 3):
            assert len(attrs) == len(nodes) - 1
            for i, attr in enumerate(attrs):
                assert diamond.has_edge(nodes[i], attr, nodes[i + 1])

    def test_reverse_matches_forward(self, diamond):
        """Every forward path to t appears in the reverse enumeration."""
        forward = {
            (nodes, attrs)
            for root in diamond.nodes()
            for nodes, attrs in iter_paths_from(diamond, root, 3)
            if nodes[-1] == 3
        }
        reverse = set(iter_reverse_paths_to(diamond, 3, 3))
        assert forward == reverse

    def test_reverse_simple_on_cycle(self, cycle):
        paths = {
            nodes for nodes, _attrs in iter_reverse_paths_to(cycle, 0, 10)
        }
        assert paths == {(0,), (2, 0), (1, 2, 0)}

    def test_bad_max_nodes(self, diamond):
        with pytest.raises(PathIndexError):
            list(iter_reverse_paths_to(diamond, 0, 0))


class TestLabels:
    def test_interleaving(self, diamond):
        labels = interleaved_labels(diamond, (0, 1, 3), (0, 1))
        tid = diamond.type_id("T")
        assert labels == (tid, 0, tid, 1, tid)

    def test_single_node(self, diamond):
        labels = interleaved_labels(diamond, (2,), ())
        assert labels == (diamond.type_id("T"),)
