"""Docstring examples must stay executable."""

import doctest

import pytest

import repro.core.topk
import repro.kg.loaders.ntriples
import repro.kg.similarity
import repro.kg.stemmer
import repro.kg.synonyms
import repro.kg.text

MODULES = [
    repro.core.topk,
    repro.kg.loaders.ntriples,
    repro.kg.similarity,
    repro.kg.stemmer,
    repro.kg.synonyms,
    repro.kg.text,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tests = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert failures == 0
    assert tests > 0, f"{module.__name__} lost its doctest examples"
