"""PatternInterner, PatternFirstIndex, RootFirstIndex, PathEntry."""

import pytest

from repro.core.errors import PathIndexError
from repro.core.pattern import PathPattern
from repro.index.entry import (
    PathEntry,
    combination_score_terms,
    entries_form_tree,
    subtree_from_entries,
)
from repro.index.interner import PatternInterner
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex


class TestInterner:
    def test_intern_and_lookup(self):
        interner = PatternInterner()
        pid = interner.intern((0, 1, 2), False)
        assert interner.intern((0, 1, 2), False) == pid
        assert interner.pattern(pid) == PathPattern((0, 1, 2), False)
        assert len(interner) == 1

    def test_edge_flag_distinguishes(self):
        interner = PatternInterner()
        a = interner.intern((0, 1), True)
        b = interner.intern((0, 1, 0), False)
        assert a != b

    def test_lookup_unknown_raises(self):
        interner = PatternInterner()
        with pytest.raises(PathIndexError):
            interner.pattern(7)
        with pytest.raises(PathIndexError):
            interner.lookup(PathPattern((0,), False))

    def test_contains_and_intern_pattern(self):
        interner = PatternInterner()
        pattern = PathPattern((0, 1, 2), False)
        pid = interner.intern_pattern(pattern)
        assert pattern in interner
        assert interner.lookup(pattern) == pid


def make_entry(nodes, attrs=(), edge=False, pr=1.0, sim=1.0):
    return PathEntry(tuple(nodes), tuple(attrs), edge, pr, sim)


class TestPathEntry:
    def test_properties(self):
        entry = make_entry((3, 4, 5), (0, 1), edge=True, pr=0.5, sim=0.25)
        assert entry.root == 3
        assert entry.size == 3
        assert entry.components().size == 3
        assert entry.components().pr == 0.5

    def test_to_match_path(self):
        entry = make_entry((3, 4), (0,), edge=False)
        path = entry.to_match_path()
        assert path.nodes == (3, 4)
        assert not path.matched_on_edge

    def test_combination_score_terms(self):
        entries = [
            make_entry((0, 1), (0,), pr=0.5, sim=0.5),
            make_entry((0,), (), pr=1.5, sim=1.0),
        ]
        assert combination_score_terms(entries) == (3, 2.0, 1.5)


class TestEntriesFormTree:
    def test_shared_root_disjoint_branches(self):
        a = make_entry((0, 1), (0,))
        b = make_entry((0, 2), (1,))
        assert entries_form_tree((a, b))

    def test_conflicting_parent_rejected(self):
        a = make_entry((0, 1, 3), (0, 1))
        b = make_entry((0, 2, 3), (0, 1))
        assert not entries_form_tree((a, b))

    def test_different_roots_rejected(self):
        assert not entries_form_tree((make_entry((0,)), make_entry((1,))))

    def test_edge_into_root_rejected(self):
        a = make_entry((0, 1), (0,))
        b = make_entry((0, 1, 0), (0, 1))
        assert not entries_form_tree((a, b))

    def test_subtree_from_entries(self):
        a = make_entry((0, 1), (0,))
        b = make_entry((0, 2), (1,))
        tree = subtree_from_entries((a, b))
        assert tree is not None
        assert tree.node_set() == {0, 1, 2}

    def test_subtree_from_invalid_is_none(self):
        a = make_entry((0, 1, 3), (0, 1))
        b = make_entry((0, 2, 3), (0, 1))
        assert subtree_from_entries((a, b)) is None
        assert subtree_from_entries(()) is None


@pytest.fixture
def filled_indexes():
    interner = PatternInterner()
    pattern_first = PatternFirstIndex(interner)
    root_first = RootFirstIndex(interner)
    pid_a = interner.intern((0, 0, 1), False)
    pid_b = interner.intern((2,), False)
    entries = [
        ("databas", pid_a, make_entry((10, 11), (0,))),
        ("databas", pid_a, make_entry((12, 13), (0,))),
        ("databas", pid_b, make_entry((14,))),
        ("softwar", pid_b, make_entry((10,))),
    ]
    for word, pid, entry in entries:
        pattern_first.add(word, pid, entry)
        root_first.add(word, pid, entry)
    pattern_first.finalize()
    root_first.finalize()
    return interner, pattern_first, root_first, (pid_a, pid_b)


class TestPatternFirst:
    def test_patterns(self, filled_indexes):
        _interner, pf, _rf, (pid_a, pid_b) = filled_indexes
        assert set(pf.patterns("databas")) == {pid_a, pid_b}
        assert pf.patterns("missing") == []

    def test_roots(self, filled_indexes):
        _interner, pf, _rf, (pid_a, _pid_b) = filled_indexes
        assert set(pf.roots("databas", pid_a)) == {10, 12}

    def test_paths(self, filled_indexes):
        _interner, pf, _rf, (pid_a, _pid_b) = filled_indexes
        paths = pf.paths("databas", pid_a, 10)
        assert len(paths) == 1
        assert paths[0].nodes == (10, 11)
        assert pf.paths("databas", pid_a, 999) == []

    def test_patterns_rooted_at(self, filled_indexes):
        _interner, pf, _rf, (pid_a, pid_b) = filled_indexes
        assert list(pf.patterns_rooted_at("databas", 0)) == [pid_a]
        assert list(pf.patterns_rooted_at("databas", 2)) == [pid_b]
        assert list(pf.patterns_rooted_at("databas", 9)) == []

    def test_root_types(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert pf.root_types("databas") == {0, 2}

    def test_num_entries(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert pf.num_entries() == 4
        assert pf.num_entries("databas") == 3

    def test_iter_entries(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert len(list(pf.iter_entries())) == 4

    def test_has_word(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert pf.has_word("softwar")
        assert not pf.has_word("ghost")


class TestRootFirst:
    def test_roots(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        assert set(rf.roots("databas")) == {10, 12, 14}

    def test_patterns_per_root(self, filled_indexes):
        _interner, _pf, rf, (pid_a, _pid_b) = filled_indexes
        assert rf.patterns("databas", 10) == [pid_a]
        assert rf.patterns("databas", 999) == []

    def test_paths_chains_patterns(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        all_paths = list(rf.paths("databas", 10))
        assert len(all_paths) == 1
        assert list(rf.paths("ghost", 10)) == []

    def test_paths_with_pattern(self, filled_indexes):
        _interner, _pf, rf, (pid_a, pid_b) = filled_indexes
        assert len(rf.paths_with_pattern("databas", 10, pid_a)) == 1
        assert rf.paths_with_pattern("databas", 10, pid_b) == []

    def test_path_count(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        assert rf.path_count("databas", 10) == 1
        assert rf.path_count("databas", 999) == 0
        assert rf.path_count("ghost", 10) == 0

    def test_num_entries(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        assert rf.num_entries() == 4
        assert rf.num_entries("softwar") == 1

    def test_pattern_map(self, filled_indexes):
        _interner, _pf, rf, (pid_a, _pid_b) = filled_indexes
        assert set(rf.pattern_map("databas", 10)) == {pid_a}
        assert rf.pattern_map("databas", 999) == {}
