"""PatternInterner, PatternFirstIndex, RootFirstIndex, PathEntry."""

import pytest

from repro.core.errors import PathIndexError
from repro.core.pattern import PathPattern
from repro.index.entry import (
    PathEntry,
    combination_score_terms,
    entries_form_tree,
    subtree_from_entries,
)
from repro.index.interner import PatternInterner
from repro.index.pattern_first import PatternFirstIndex
from repro.index.root_first import RootFirstIndex


class TestInterner:
    def test_intern_and_lookup(self):
        interner = PatternInterner()
        pid = interner.intern((0, 1, 2), False)
        assert interner.intern((0, 1, 2), False) == pid
        assert interner.pattern(pid) == PathPattern((0, 1, 2), False)
        assert len(interner) == 1

    def test_edge_flag_distinguishes(self):
        interner = PatternInterner()
        a = interner.intern((0, 1), True)
        b = interner.intern((0, 1, 0), False)
        assert a != b

    def test_lookup_unknown_raises(self):
        interner = PatternInterner()
        with pytest.raises(PathIndexError):
            interner.pattern(7)
        with pytest.raises(PathIndexError):
            interner.lookup(PathPattern((0,), False))

    def test_contains_and_intern_pattern(self):
        interner = PatternInterner()
        pattern = PathPattern((0, 1, 2), False)
        pid = interner.intern_pattern(pattern)
        assert pattern in interner
        assert interner.lookup(pattern) == pid


def make_entry(nodes, attrs=(), edge=False, pr=1.0, sim=1.0):
    return PathEntry(tuple(nodes), tuple(attrs), edge, pr, sim)


class TestPathEntry:
    def test_properties(self):
        entry = make_entry((3, 4, 5), (0, 1), edge=True, pr=0.5, sim=0.25)
        assert entry.root == 3
        assert entry.size == 3
        assert entry.components().size == 3
        assert entry.components().pr == 0.5

    def test_to_match_path(self):
        entry = make_entry((3, 4), (0,), edge=False)
        path = entry.to_match_path()
        assert path.nodes == (3, 4)
        assert not path.matched_on_edge

    def test_combination_score_terms(self):
        entries = [
            make_entry((0, 1), (0,), pr=0.5, sim=0.5),
            make_entry((0,), (), pr=1.5, sim=1.0),
        ]
        assert combination_score_terms(entries) == (3, 2.0, 1.5)


class TestEntriesFormTree:
    def test_shared_root_disjoint_branches(self):
        a = make_entry((0, 1), (0,))
        b = make_entry((0, 2), (1,))
        assert entries_form_tree((a, b))

    def test_conflicting_parent_rejected(self):
        a = make_entry((0, 1, 3), (0, 1))
        b = make_entry((0, 2, 3), (0, 1))
        assert not entries_form_tree((a, b))

    def test_different_roots_rejected(self):
        assert not entries_form_tree((make_entry((0,)), make_entry((1,))))

    def test_edge_into_root_rejected(self):
        a = make_entry((0, 1), (0,))
        b = make_entry((0, 1, 0), (0, 1))
        assert not entries_form_tree((a, b))

    def test_subtree_from_entries(self):
        a = make_entry((0, 1), (0,))
        b = make_entry((0, 2), (1,))
        tree = subtree_from_entries((a, b))
        assert tree is not None
        assert tree.node_set() == {0, 1, 2}

    def test_subtree_from_invalid_is_none(self):
        a = make_entry((0, 1, 3), (0, 1))
        b = make_entry((0, 2, 3), (0, 1))
        assert subtree_from_entries((a, b)) is None
        assert subtree_from_entries(()) is None


@pytest.fixture
def filled_indexes():
    interner = PatternInterner()
    pattern_first = PatternFirstIndex(interner)
    root_first = RootFirstIndex(interner)
    pid_a = interner.intern((0, 0, 1), False)
    pid_b = interner.intern((2,), False)
    entries = [
        ("databas", pid_a, make_entry((10, 11), (0,))),
        ("databas", pid_a, make_entry((12, 13), (0,))),
        ("databas", pid_b, make_entry((14,))),
        ("softwar", pid_b, make_entry((10,))),
    ]
    for word, pid, entry in entries:
        pattern_first.add(word, pid, entry)
        root_first.add(word, pid, entry)
    pattern_first.finalize()
    root_first.finalize()
    return interner, pattern_first, root_first, (pid_a, pid_b)


class TestPatternFirst:
    def test_patterns(self, filled_indexes):
        _interner, pf, _rf, (pid_a, pid_b) = filled_indexes
        assert set(pf.patterns("databas")) == {pid_a, pid_b}
        assert pf.patterns("missing") == []

    def test_roots(self, filled_indexes):
        _interner, pf, _rf, (pid_a, _pid_b) = filled_indexes
        assert set(pf.roots("databas", pid_a)) == {10, 12}

    def test_paths(self, filled_indexes):
        _interner, pf, _rf, (pid_a, _pid_b) = filled_indexes
        paths = pf.paths("databas", pid_a, 10)
        assert len(paths) == 1
        assert paths[0].nodes == (10, 11)
        assert pf.paths("databas", pid_a, 999) == []

    def test_patterns_rooted_at(self, filled_indexes):
        _interner, pf, _rf, (pid_a, pid_b) = filled_indexes
        assert list(pf.patterns_rooted_at("databas", 0)) == [pid_a]
        assert list(pf.patterns_rooted_at("databas", 2)) == [pid_b]
        assert list(pf.patterns_rooted_at("databas", 9)) == []

    def test_root_types(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert pf.root_types("databas") == {0, 2}

    def test_num_entries(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert pf.num_entries() == 4
        assert pf.num_entries("databas") == 3

    def test_iter_entries(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert len(list(pf.iter_entries())) == 4

    def test_has_word(self, filled_indexes):
        _interner, pf, _rf, _pids = filled_indexes
        assert pf.has_word("softwar")
        assert not pf.has_word("ghost")


class TestRootFirst:
    def test_roots(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        assert set(rf.roots("databas")) == {10, 12, 14}

    def test_patterns_per_root(self, filled_indexes):
        _interner, _pf, rf, (pid_a, _pid_b) = filled_indexes
        assert rf.patterns("databas", 10) == [pid_a]
        assert rf.patterns("databas", 999) == []

    def test_paths_chains_patterns(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        all_paths = list(rf.paths("databas", 10))
        assert len(all_paths) == 1
        assert list(rf.paths("ghost", 10)) == []

    def test_paths_with_pattern(self, filled_indexes):
        _interner, _pf, rf, (pid_a, pid_b) = filled_indexes
        assert len(rf.paths_with_pattern("databas", 10, pid_a)) == 1
        assert rf.paths_with_pattern("databas", 10, pid_b) == []

    def test_path_count(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        assert rf.path_count("databas", 10) == 1
        assert rf.path_count("databas", 999) == 0
        assert rf.path_count("ghost", 10) == 0

    def test_num_entries(self, filled_indexes):
        _interner, _pf, rf, _pids = filled_indexes
        assert rf.num_entries() == 4
        assert rf.num_entries("softwar") == 1

    def test_pattern_map(self, filled_indexes):
        _interner, _pf, rf, (pid_a, _pid_b) = filled_indexes
        assert set(rf.pattern_map("databas", 10)) == {pid_a}
        assert rf.pattern_map("databas", 999) == {}


class TestPostingStore:
    def make_store(self):
        from repro.index.store import PostingStore

        interner = PatternInterner()
        store = PostingStore(interner)
        pid_a = interner.intern((0, 0, 1), False)
        pid_b = interner.intern((2,), False)
        return interner, store, pid_a, pid_b

    def test_path_interning_dedups(self):
        _interner, store, pid_a, _pid_b = self.make_store()
        first = store.add_path((10, 11), (0,), False, pid_a, 0.5)
        again = store.add_path((10, 11), (0,), False, pid_a, 0.5)
        assert first == again
        assert store.num_paths == 1
        store.add_posting("databas", first, 1.0)
        store.add_posting("softwar", first, 0.5)
        assert store.num_postings() == 2
        assert store.dedup_ratio() == 2.0

    def test_edge_flag_distinguishes_paths(self):
        _interner, store, pid_a, pid_b = self.make_store()
        node_match = store.add_path((10, 11), (0,), False, pid_a, 0.5)
        edge_match = store.add_path((10, 11), (0,), True, pid_b, 0.5)
        assert node_match != edge_match
        assert store.num_paths == 2

    def test_columns_roundtrip_single_path(self):
        _interner, store, pid_a, _pid_b = self.make_store()
        path_id = store.add_path((10, 11, 12), (0, 1), False, pid_a, 0.25)
        assert store.path_nodes(path_id) == (10, 11, 12)
        assert store.path_attrs(path_id) == (0, 1)
        assert store.path_root(path_id) == 10
        assert store.path_size(path_id) == 3
        assert store.path_pr(path_id) == 0.25
        assert not store.path_matched_on_edge(path_id)
        assert store.matched_node(path_id) == 12
        edge_id = store.add_path((10, 11, 12), (0, 1), True, pid_a, 0.5)
        assert store.matched_node(edge_id) == 11

    def test_mismatched_attr_count_rejected(self):
        _interner, store, pid_a, _pid_b = self.make_store()
        with pytest.raises(PathIndexError):
            store.add_path((10, 11), (0, 1), False, pid_a, 0.5)

    def test_shared_store_feeds_both_views(self):
        from repro.index.pattern_first import PatternFirstIndex
        from repro.index.root_first import RootFirstIndex

        interner, store, pid_a, _pid_b = self.make_store()
        pf = PatternFirstIndex(interner, store)
        rf = RootFirstIndex(interner, store)
        store.add_entry("databas", pid_a, make_entry((10, 11), (0,)))
        assert pf.num_entries() == rf.num_entries() == 1
        assert list(pf.roots("databas", pid_a)) == [10]
        assert rf.path_count("databas", 10) == 1
        # Leaf posting lists are the same object in both views.
        pf_leaf = pf.paths("databas", pid_a, 10)
        rf_leaf = rf.paths_with_pattern("databas", 10, pid_a)
        assert pf_leaf is rf_leaf

    def test_view_refreshes_after_store_mutation(self):
        from repro.index.root_first import RootFirstIndex

        interner, store, pid_a, _pid_b = self.make_store()
        rf = RootFirstIndex(interner, store)
        store.add_entry("databas", pid_a, make_entry((10, 11), (0,)))
        assert rf.path_count("databas", 10) == 1
        store.add_entry("databas", pid_a, make_entry((10, 12), (0,)))
        assert rf.path_count("databas", 10) == 2

    def test_form_tree_matches_entries_on_non_simple_paths(self):
        # Builder-enumerated paths are always simple, but add_path accepts
        # hand-constructed ones; the single-path fast path must agree with
        # entries_form_tree on them too.
        _interner, store, pid_a, _pid_b = self.make_store()
        cases = [
            ((10, 11, 12), (0, 1)),        # simple: valid alone
            ((10, 11, 10), (0, 1)),        # re-enters its own root
            ((10, 11, 12, 11), (0, 1, 2)), # node 11 gets two parent edges
        ]
        for nodes, attrs in cases:
            path_id = store.add_path(nodes, attrs, False, pid_a, 0.5)
            entry = store.make_entry(path_id, 1.0)
            expected = entries_form_tree((entry,))
            assert store.form_tree([path_id]) == expected, nodes
            checker = store.pairs_checker()
            assert checker(((path_id, 1.0),)) == expected, nodes

    def test_form_tree_cache_refreshes_after_append(self):
        # append_path bumps the store version, so the query-acceleration
        # columns may not serve stale state across interleaved appends.
        _interner, store, pid_a, _pid_b = self.make_store()
        first = store.add_path((10, 11), (0,), False, pid_a, 0.5)
        assert store.form_tree([first])
        second = store.append_path((10, 12), (0,), False, pid_a, 0.5)
        assert store.form_tree([second])
        assert store.form_tree([first, second])


class TestPostingList:
    def build(self):
        from repro.index.root_first import RootFirstIndex

        interner = PatternInterner()
        rf = RootFirstIndex(interner)
        pid = interner.intern((0, 0, 1), False)
        rf.add("databas", pid, make_entry((10, 11), (0,), pr=0.5, sim=1.0))
        rf.add("databas", pid, make_entry((10, 12), (0,), pr=0.25, sim=1.0))
        rf.finalize()
        return rf.paths_with_pattern("databas", 10, pid)

    def test_len_and_counts_do_not_materialize(self):
        postings = self.build()
        assert len(postings) == 2
        assert postings._entries is None, "len() must stay lazy"

    def test_materializes_once_and_caches(self):
        postings = self.build()
        first = postings.entries()
        assert postings.entries() is first
        assert [e.nodes for e in postings] == [(10, 11), (10, 12)]

    def test_value_equality_with_plain_lists(self):
        postings = self.build()
        assert postings == [
            PathEntry((10, 11), (0,), False, 0.5, 1.0),
            PathEntry((10, 12), (0,), False, 0.25, 1.0),
        ]
        assert postings != []

    def test_indexing_and_iteration(self):
        postings = self.build()
        assert postings[0].nodes == (10, 11)
        assert postings[-1].nodes == (10, 12)
        assert [e.pr for e in postings] == [0.5, 0.25]
