"""Jaccard and companion similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kg.similarity import (
    containment,
    dice,
    jaccard,
    keyword_similarity,
    overlap_coefficient,
)

token_sets = st.frozensets(
    st.text(alphabet="abcdef", min_size=1, max_size=3), max_size=6
)


class TestJaccard:
    def test_paper_example(self):
        """Example 2.4: "database" vs "Relational database" scores 1/2."""
        assert jaccard({"database"}, {"relational", "database"}) == 0.5

    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 0.0

    @given(token_sets, token_sets)
    def test_range_and_symmetry(self, a, b):
        value = jaccard(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard(b, a)

    @given(token_sets)
    def test_self_similarity(self, a):
        assert jaccard(a, a) == (1.0 if a else 0.0)


class TestKeywordSimilarity:
    def test_hit_is_reciprocal_size(self):
        """Example 2.4: a word inside a six-token title scores 1/6."""
        tokens = frozenset(f"w{i}" for i in range(5)) | {"database"}
        assert keyword_similarity("database", tokens) == pytest.approx(1 / 6)

    def test_miss_is_zero(self):
        assert keyword_similarity("database", {"relational"}) == 0.0

    def test_exact_match_is_one(self):
        assert keyword_similarity("software", {"software"}) == 1.0

    @given(st.text(alphabet="abc", min_size=1, max_size=2), token_sets)
    def test_equals_jaccard_singleton(self, word, tokens):
        assert keyword_similarity(word, tokens) == pytest.approx(
            jaccard({word}, tokens)
        )


class TestAlternatives:
    @given(token_sets, token_sets)
    def test_dice_range_symmetry(self, a, b):
        value = dice(a, b)
        assert 0.0 <= value <= 1.0
        assert value == dice(b, a)

    @given(token_sets, token_sets)
    def test_dice_dominates_jaccard(self, a, b):
        assert dice(a, b) >= jaccard(a, b) - 1e-12

    def test_overlap(self):
        assert overlap_coefficient({"a", "b"}, {"a"}) == 1.0
        assert overlap_coefficient(set(), {"a"}) == 0.0

    def test_containment(self):
        assert containment(["a", "b"], {"a", "c"}) == 0.5
        assert containment([], {"a"}) == 0.0
