"""Porter stemmer: published vectors, step behaviour, and properties."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kg.stemmer import (
    _ends_cvc,
    _ends_double_consonant,
    _measure,
    stem,
    stem_all,
)

# Vectors from Porter's paper and the canonical reference implementation.
PORTER_VECTORS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", PORTER_VECTORS)
def test_porter_vectors(word, expected):
    assert stem(word) == expected


def test_domain_words_match_each_other():
    """The pairs the paper's matching depends on stem identically."""
    assert stem("database") == stem("databases")
    assert stem("software") == stem("softwares")
    assert stem("company") == stem("companies")
    assert stem("movie") == stem("movies")
    assert stem("city") == stem("cities")


def test_short_words_untouched():
    assert stem("db") == "db"
    assert stem("a") == "a"
    assert stem("IS") == "is"


def test_case_insensitive():
    assert stem("Databases") == stem("databases")
    assert stem("RUNNING") == stem("running")


def test_stem_all_preserves_order():
    assert stem_all(["Databases", "Companies"]) == ["databas", "compani"]


def test_measure():
    assert _measure("tr") == 0
    assert _measure("ee") == 0
    assert _measure("tree") == 0
    assert _measure("y") == 0
    assert _measure("by") == 0
    assert _measure("trouble") == 1
    assert _measure("oats") == 1
    assert _measure("trees") == 1
    assert _measure("ivy") == 1
    assert _measure("troubles") == 2
    assert _measure("private") == 2
    assert _measure("oaten") == 2


def test_ends_cvc():
    assert _ends_cvc("hop")
    assert _ends_cvc("wil")
    assert not _ends_cvc("snow")  # ends w
    assert not _ends_cvc("box")  # ends x
    assert not _ends_cvc("tray")  # ends y
    assert not _ends_cvc("fail")  # VVC


def test_ends_double_consonant():
    assert _ends_double_consonant("fall")
    assert _ends_double_consonant("hiss")
    assert not _ends_double_consonant("see")
    assert not _ends_double_consonant("cat")


@given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=20))
def test_stem_never_longer_and_lowercase(word):
    result = stem(word)
    assert len(result) <= len(word)
    assert result == result.lower()


@given(st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=20))
def test_stem_deterministic(word):
    assert stem(word) == stem(word)


@given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=20))
def test_stem_nonempty(word):
    assert stem(word)
