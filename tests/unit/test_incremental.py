"""Incremental index maintenance: equivalence with a full rebuild."""

import pytest

from repro.core.errors import PathIndexError
from repro.index.builder import build_indexes
from repro.index.incremental import add_entity, add_relationship
from repro.kg.graph import KnowledgeGraph
from repro.kg.pagerank import uniform_scores
from repro.kg.stemmer import stem
from repro.search.pattern_enum import pattern_enum_search


def entry_set(indexes):
    return {
        (word, entry.nodes, entry.attrs, entry.matched_on_edge)
        for word, _pid, entry in indexes.root_first.iter_entries()
    }


def uniform(graph):
    return uniform_scores(graph)


@pytest.fixture
def base():
    """Software --Developer--> Company, indexed at d=3 with uniform PR."""
    graph = KnowledgeGraph()
    software = graph.add_node("Software", "SQL Server")
    company = graph.add_node("Company", "Microsoft")
    graph.add_edge(software, "Developer", company)
    indexes = build_indexes(graph, d=3, pagerank_scores=uniform(graph))
    return graph, indexes, software, company


class TestAddEntity:
    def test_singleton_paths_indexed(self, base):
        graph, indexes, _software, _company = base
        node = add_entity(indexes, "Person", "Bill Gates", pagerank=1.0)
        assert graph.node_text(node) == "Bill Gates"
        roots = indexes.root_first.roots(stem("gates"))
        assert set(roots) == {node}

    def test_searchable_immediately(self, base):
        _graph, indexes, _software, _company = base
        add_entity(indexes, "Person", "Bill Gates", pagerank=1.0)
        result = pattern_enum_search(indexes, "gates", k=5)
        assert result.num_answers == 1

    def test_default_pagerank_is_teleport_floor(self, base):
        graph, indexes, _software, _company = base
        node = add_entity(indexes, "Person", "Nobody Links Here")
        assert indexes.pagerank_scores[node] == pytest.approx(
            0.15 / graph.num_nodes
        )

    def test_new_type_allowed(self, base):
        _graph, indexes, _software, _company = base
        node = add_entity(indexes, "BrandNewType", "fresh thing")
        result = pattern_enum_search(indexes, "brandnewtype", k=5)
        assert result.num_answers == 1
        assert result.answers[0].subtrees[0][0].nodes == (node,)


class TestAddRelationship:
    def test_matches_full_rebuild(self, base):
        """Entry-level equivalence: incremental == from-scratch."""
        graph, indexes, software, _company = base
        person = add_entity(indexes, "Person", "Bill Gates", pagerank=1.0)
        added = add_relationship(indexes, software, "Designed by", person)
        assert added > 0
        rebuilt = build_indexes(graph, d=3, pagerank_scores=uniform(graph))
        assert entry_set(indexes) == entry_set(rebuilt)

    def test_chain_extension_matches_rebuild(self, base):
        """New edge in the middle: prefix x suffix paths all appear."""
        graph, indexes, software, company = base
        person = add_entity(indexes, "Person", "Bill Gates", pagerank=1.0)
        add_relationship(indexes, company, "Founder", person)
        rebuilt = build_indexes(graph, d=3, pagerank_scores=uniform(graph))
        assert entry_set(indexes) == entry_set(rebuilt)
        # The 3-node path Software -> Company -> Person is now indexed.
        result = pattern_enum_search(indexes, "software founder gates", k=5)
        assert result.num_answers >= 1

    def test_new_attr_type_matches(self, base):
        _graph, indexes, software, company = base
        add_relationship(indexes, company, "Acquired", software)
        result = pattern_enum_search(indexes, "company acquired", k=5)
        assert result.num_answers >= 1

    def test_search_agreement_after_updates(self, base):
        """All engines agree on the incrementally-updated index."""
        from repro.search.baseline import baseline_search
        from repro.search.linear_topk import linear_topk_search

        graph, indexes, software, company = base
        person = add_entity(indexes, "Person", "Bill Gates", pagerank=1.0)
        add_relationship(indexes, company, "Founder", person)
        query = "software company founder"
        a = pattern_enum_search(indexes, query, k=10)
        b = linear_topk_search(indexes, query, k=10)
        c = baseline_search(indexes, query, k=10)
        assert a.scores() == pytest.approx(b.scores())
        assert b.scores() == pytest.approx(c.scores())

    def test_unknown_endpoint_rejected(self, base):
        _graph, indexes, software, _company = base
        with pytest.raises(PathIndexError):
            add_relationship(indexes, software, "Rel", 999)

    def test_cycle_edge_stays_simple(self, base):
        """Closing a cycle must only add simple paths (no infinite loops)."""
        graph, indexes, software, company = base
        add_relationship(indexes, company, "Makes", software)
        rebuilt = build_indexes(graph, d=3, pagerank_scores=uniform(graph))
        assert entry_set(indexes) == entry_set(rebuilt)

    def test_d1_index_never_adds_edge_paths(self):
        graph = KnowledgeGraph()
        a = graph.add_node("T", "alpha")
        b = graph.add_node("T", "beta")
        indexes = build_indexes(graph, d=1, pagerank_scores=uniform(graph))
        added = add_relationship(indexes, a, "rel", b)
        assert added == 0  # d=1 stores only singleton paths


class TestRandomizedEquivalence:
    def test_incremental_build_equals_batch(self):
        """Grow a small random graph edge by edge; compare with rebuild."""
        import random

        rng = random.Random(5)
        words = ["ruby", "topaz", "opal", "jade"]
        graph = KnowledgeGraph()
        indexes = build_indexes(graph, d=3, pagerank_scores=[])
        nodes = []
        for i in range(8):
            node = add_entity(
                indexes,
                rng.choice(["TA", "TB"]),
                f"{rng.choice(words)} item{i}",
                pagerank=1.0,
            )
            nodes.append(node)
        edges = set()
        for _ in range(12):
            u, v = rng.sample(nodes, 2)
            attr = rng.choice(["ra", "rb"])
            if (u, attr, v) in edges:
                continue
            edges.add((u, attr, v))
            add_relationship(indexes, u, attr, v)
        rebuilt = build_indexes(
            graph, d=3, pagerank_scores=[1.0] * graph.num_nodes
        )
        assert entry_set(indexes) == entry_set(rebuilt)
        # And searches agree end to end.
        result_incremental = pattern_enum_search(indexes, "ruby topaz", k=20)
        result_rebuilt = pattern_enum_search(rebuilt, "ruby topaz", k=20)
        assert result_incremental.scores() == pytest.approx(
            result_rebuilt.scores()
        )
