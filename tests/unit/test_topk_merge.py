"""Property tests for scatter–gather top-k merge semantics.

The sharded coordinator merges per-shard top-k lists into one global
:class:`TopKQueue` guarded by a :class:`TopKThreshold`.  Exactness rests
on three properties, each checked here against the single-queue oracle:

1. **Truncation suffices** — merging per-partition *top-k* lists (not
   the full per-partition streams) loses nothing, because a globally
   retained item is in its own partition's top k.
2. **Order invariance** — the merged ranking does not depend on the
   order partitions are gathered in, or on the order items arrived
   within a partition, because tie conflicts are settled by canonical
   tie keys, not insertion order.
3. **Skip admissibility** — a partition whose score upper bound fails
   ``threshold.admits`` (strictly below the current k-th score) can be
   dropped without changing the result; equality must be admitted
   because a tied score can still win on its tie key.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import TopKQueue, TopKThreshold

# A small score palette forces frequent exact-equality ties, and a small
# tie-key range forces (score, tie_key) duplicates — the hard cases.
SCORES = (0.125, 0.25, 0.5, 0.75, 1.0)


@st.composite
def merge_cases(draw):
    items = draw(
        st.lists(
            st.tuples(st.sampled_from(SCORES), st.integers(0, 5)),
            max_size=40,
        )
    )
    k = draw(st.integers(1, 6))
    num_parts = draw(st.integers(1, 5))
    assignment = [draw(st.integers(0, num_parts - 1)) for _ in items]
    gather_order = draw(st.permutations(range(num_parts)))
    return items, k, num_parts, assignment, gather_order


def global_ranking(items, k):
    queue = TopKQueue(k)
    for score, tie_key in items:
        queue.push(score, (score, tie_key), tie_key=tie_key)
    return [value for _score, value in queue.ranked()]


def partition(items, num_parts, assignment):
    parts = [[] for _ in range(num_parts)]
    for item, part in zip(items, assignment):
        parts[part].append(item)
    return parts


def local_topk(part, k):
    queue = TopKQueue(k)
    for score, tie_key in part:
        queue.push(score, (score, tie_key), tie_key=tie_key)
    return queue.ranked()


def merge(local_lists, k, *, skip_by_bound=False):
    """The coordinator's gather loop, optionally with bound skipping."""
    queue = TopKQueue(k)
    threshold = TopKThreshold(queue)
    skipped = 0
    for ranked in local_lists:
        if skip_by_bound:
            upper = ranked[0][0] if ranked else 0.0
            if not ranked or not threshold.admits(upper):
                skipped += 1
                continue
        for score, value in ranked:
            queue.push(score, value, tie_key=value[1])
    return [value for _score, value in queue.ranked()], skipped


@given(case=merge_cases())
@settings(max_examples=300, deadline=None)
def test_merged_topk_equals_single_global_run(case):
    items, k, num_parts, assignment, gather_order = case
    parts = partition(items, num_parts, assignment)
    local_lists = [local_topk(parts[p], k) for p in gather_order]
    merged, _ = merge(local_lists, k)
    assert merged == global_ranking(items, k)


@given(case=merge_cases())
@settings(max_examples=200, deadline=None)
def test_merge_is_gather_order_invariant(case):
    items, k, num_parts, assignment, gather_order = case
    parts = partition(items, num_parts, assignment)
    forward = [local_topk(parts[p], k) for p in range(num_parts)]
    permuted = [local_topk(parts[p], k) for p in gather_order]
    assert merge(forward, k)[0] == merge(permuted, k)[0]


@given(case=merge_cases())
@settings(max_examples=200, deadline=None)
def test_merge_invariant_to_arrival_order_within_partition(case):
    items, k, num_parts, assignment, gather_order = case
    parts = partition(items, num_parts, assignment)
    local_lists = [local_topk(parts[p], k) for p in gather_order]
    reversed_lists = [local_topk(list(reversed(parts[p])), k)
                      for p in gather_order]
    assert merge(local_lists, k)[0] == merge(reversed_lists, k)[0]


@given(case=merge_cases())
@settings(max_examples=300, deadline=None)
def test_bound_skipping_never_changes_the_merge(case):
    # Best-bound-first gather, skipping partitions whose max retained
    # score fails the admission gate — exactly the shard protocol, with
    # the partition max standing in for the shard's upper bound.
    items, k, num_parts, assignment, _ = case
    parts = partition(items, num_parts, assignment)
    local_lists = [local_topk(part, k) for part in parts]
    local_lists.sort(key=lambda ranked: -(ranked[0][0] if ranked else 0.0))
    merged, skipped = merge(local_lists, k, skip_by_bound=True)
    assert merged == global_ranking(items, k)
    assert 0 <= skipped <= num_parts


@given(case=merge_cases())
@settings(max_examples=200, deadline=None)
def test_statically_dropping_below_threshold_partitions_is_safe(case):
    # The offline variant: once the exact k-th score is known, any
    # partition whose upper bound is *strictly* below it contributes
    # nothing.  (Equal bounds must be kept: tie keys can still win.)
    items, k, num_parts, assignment, _ = case
    parts = partition(items, num_parts, assignment)
    reference = global_ranking(items, k)
    if len(reference) < k:
        kth = float("-inf")
    else:
        kth = reference[-1][0]
    kept = [
        local_topk(part, k)
        for part in parts
        if part and max(score for score, _ in part) >= kth
    ]
    assert merge(kept, k)[0] == reference
