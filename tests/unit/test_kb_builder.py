"""KnowledgeBase -> KnowledgeGraph conversion."""

import pytest

from repro.core.errors import KnowledgeBaseError
from repro.kg.builder import build_graph
from repro.kg.entity import EntityRef, TextValue
from repro.kg.graph import TEXT_TYPE_NAME
from repro.kg.knowledge_base import KnowledgeBase


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_entity("SQL Server", "Software")
    kb.add_entity("Microsoft", "Company")
    kb.set_attribute("SQL Server", "Developer", EntityRef("Microsoft"))
    kb.set_attribute("Microsoft", "Revenue", TextValue("US$ 77 billion"))
    return kb


class TestBuildGraph:
    def test_nodes_and_edges(self, kb):
        graph, nodes = build_graph(kb)
        assert graph.num_nodes == 3  # 2 entities + 1 text node
        assert graph.num_edges == 2
        assert graph.node_text(nodes["SQL Server"]) == "SQL Server"

    def test_entity_ref_edge(self, kb):
        graph, nodes = build_graph(kb)
        dev = graph.attr_id("Developer")
        assert graph.has_edge(nodes["SQL Server"], dev, nodes["Microsoft"])

    def test_text_value_becomes_dummy_node(self, kb):
        graph, nodes = build_graph(kb)
        revenue_edges = graph.out_edges(nodes["Microsoft"])
        assert len(revenue_edges) == 1
        _attr, target = revenue_edges[0]
        assert graph.node_text(target) == "US$ 77 billion"
        assert not graph.node_is_entity(target)
        assert graph.node_type_name(target) == TEXT_TYPE_NAME

    def test_dangling_ref_raises_with_validation(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "T")
        kb.set_attribute("A", "rel", EntityRef("missing"))
        with pytest.raises(KnowledgeBaseError):
            build_graph(kb)

    def test_dangling_ref_raises_even_without_validation(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "T")
        kb.set_attribute("A", "rel", EntityRef("missing"))
        with pytest.raises(KnowledgeBaseError):
            build_graph(kb, validate=False)

    def test_multivalued_attribute_fans_out(self):
        kb = KnowledgeBase()
        kb.add_entity("Microsoft", "Company")
        kb.add_entity("Windows", "Software")
        kb.add_entity("Bing", "Software")
        kb.set_attribute("Microsoft", "Products", EntityRef("Windows"))
        kb.set_attribute("Microsoft", "Products", EntityRef("Bing"))
        graph, nodes = build_graph(kb)
        assert graph.out_degree(nodes["Microsoft"]) == 2

    def test_text_nodes_not_shared_by_default(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "Company")
        kb.add_entity("B", "Company")
        kb.set_attribute("A", "Revenue", TextValue("US$ 1 billion"))
        kb.set_attribute("B", "Revenue", TextValue("US$ 1 billion"))
        graph, _nodes = build_graph(kb)
        assert graph.num_nodes == 4

    def test_text_nodes_shared_when_requested(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "Company")
        kb.add_entity("B", "Company")
        kb.set_attribute("A", "Revenue", TextValue("US$ 1 billion"))
        kb.set_attribute("B", "Revenue", TextValue("US$ 1 billion"))
        graph, nodes = build_graph(kb, share_text_nodes=True)
        assert graph.num_nodes == 3
        (_attr_a, target_a), = graph.out_edges(nodes["A"])
        (_attr_b, target_b), = graph.out_edges(nodes["B"])
        assert target_a == target_b

    def test_declared_type_texts_survive(self):
        kb = KnowledgeBase()
        kb.declare_entity_type("Software", "software application")
        kb.declare_attribute_type("Developer", "developed by")
        kb.add_entity("X", "Software")
        graph, _nodes = build_graph(kb)
        assert graph.type_text(graph.type_id("Software")) == "software application"
        assert graph.attr_text(graph.attr_id("Developer")) == "developed by"

    def test_custom_entity_text(self):
        kb = KnowledgeBase()
        kb.add_entity("Q1", "Thing", text="the first quarter")
        graph, nodes = build_graph(kb)
        assert graph.node_text(nodes["Q1"]) == "the first quarter"
