"""PageRank: paper's update rule, convergence, known closed forms."""

import pytest

from repro.core.errors import GraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.pagerank import (
    normalized_pagerank,
    pagerank,
    top_ranked_nodes,
    uniform_scores,
)


def chain_graph(n=3):
    graph = KnowledgeGraph()
    nodes = [graph.add_node("T", f"n{i}") for i in range(n)]
    for i in range(n - 1):
        graph.add_edge(nodes[i], "next", nodes[i + 1])
    return graph, nodes


def cycle_graph(n=4):
    graph = KnowledgeGraph()
    nodes = [graph.add_node("T", f"n{i}") for i in range(n)]
    for i in range(n):
        graph.add_edge(nodes[i], "next", nodes[(i + 1) % n])
    return graph, nodes


class TestPagerank:
    def test_empty_graph(self):
        assert pagerank(KnowledgeGraph()) == []

    def test_single_node(self):
        graph = KnowledgeGraph()
        graph.add_node("T", "only")
        scores = pagerank(graph)
        # No in-edges: the node keeps only the teleport share (1-a)/n.
        assert scores[0] == pytest.approx(0.15, abs=1e-6)

    def test_cycle_is_uniform(self):
        graph, _nodes = cycle_graph(5)
        scores = pagerank(graph)
        for score in scores:
            assert score == pytest.approx(1 / 5, abs=1e-6)

    def test_cycle_mass_conserved(self):
        graph, _nodes = cycle_graph(7)
        assert sum(pagerank(graph)) == pytest.approx(1.0, abs=1e-6)

    def test_sink_accumulates(self):
        """A node referenced by everyone outranks the referencers."""
        graph = KnowledgeGraph()
        hub = graph.add_node("T", "hub")
        for i in range(5):
            node = graph.add_node("T", f"fan{i}")
            graph.add_edge(node, "points", hub)
        scores = pagerank(graph)
        assert scores[hub] > max(scores[1:])

    def test_chain_monotone(self):
        """Rank flows downstream: later chain nodes rank higher."""
        graph, nodes = chain_graph(4)
        scores = pagerank(graph)
        assert scores[nodes[0]] < scores[nodes[1]] < scores[nodes[2]]

    def test_paper_update_leaks_dangling_mass(self):
        graph, _nodes = chain_graph(3)
        assert sum(pagerank(graph)) < 1.0

    def test_redistribute_dangling_conserves_mass(self):
        graph, _nodes = chain_graph(3)
        scores = pagerank(graph, redistribute_dangling=True)
        assert sum(scores) == pytest.approx(1.0, abs=1e-6)

    def test_bad_damping_rejected(self):
        graph, _nodes = chain_graph(2)
        with pytest.raises(GraphError):
            pagerank(graph, damping=1.0)
        with pytest.raises(GraphError):
            pagerank(graph, damping=0.0)

    def test_non_convergence_raises(self):
        # A chain is far from its fixed point after one iteration (a cycle
        # would converge immediately from the uniform start).
        graph, _nodes = chain_graph(10)
        with pytest.raises(GraphError):
            pagerank(graph, max_iterations=1, tolerance=1e-12)

    def test_all_scores_positive(self):
        graph, _nodes = chain_graph(5)
        assert all(score > 0 for score in pagerank(graph))


class TestHelpers:
    def test_uniform_scores(self):
        graph, _nodes = chain_graph(3)
        assert uniform_scores(graph) == [1.0, 1.0, 1.0]
        assert uniform_scores(graph, 2.5) == [2.5, 2.5, 2.5]

    def test_normalized_mean_is_one(self):
        graph, _nodes = cycle_graph(6)
        scores = normalized_pagerank(graph)
        assert sum(scores) / len(scores) == pytest.approx(1.0, abs=1e-9)

    def test_top_ranked_nodes(self):
        graph = KnowledgeGraph()
        hub = graph.add_node("T", "hub")
        fans = [graph.add_node("T", f"f{i}") for i in range(4)]
        for fan in fans:
            graph.add_edge(fan, "points", hub)
        assert top_ranked_nodes(graph, k=1) == [hub]

    def test_top_ranked_tie_breaks_by_id(self):
        graph, _nodes = cycle_graph(4)
        assert top_ranked_nodes(graph, k=2) == [0, 1]
