"""Algorithm 1 (index construction), statistics, and serialization."""

import pytest

from repro.core.errors import PathIndexError
from repro.datasets.example import EXAMPLE_NORMALIZER
from repro.index.builder import build_indexes
from repro.index.serialize import load_indexes, save_indexes
from repro.index.stats import index_statistics
from repro.kg.graph import KnowledgeGraph
from repro.kg.pagerank import uniform_scores
from repro.kg.stemmer import stem


@pytest.fixture
def small_graph():
    """Software --Developer--> Company --Revenue--> (text)."""
    graph = KnowledgeGraph()
    software = graph.add_node("Software", "SQL Server")
    company = graph.add_node("Company", "Microsoft")
    text = graph.add_text_node("US$ 77 billion")
    graph.add_edge(software, "Developer", company)
    graph.add_edge(company, "Revenue", text)
    return graph


class TestBuildIndexes:
    def test_both_indexes_same_entries(self, small_graph):
        indexes = build_indexes(small_graph, d=3)
        assert indexes.pattern_first.num_entries() == indexes.root_first.num_entries()
        assert indexes.num_entries > 0

    def test_d1_has_only_singleton_paths(self, small_graph):
        indexes = build_indexes(small_graph, d=1)
        for _word, _pid, entry in indexes.root_first.iter_entries():
            assert entry.size == 1
            assert not entry.matched_on_edge

    def test_entry_sizes_bounded_by_d(self, small_graph):
        for d in (1, 2, 3):
            indexes = build_indexes(small_graph, d=d)
            for _word, _pid, entry in indexes.root_first.iter_entries():
                assert entry.size <= d

    def test_edge_match_entries_present(self, small_graph):
        indexes = build_indexes(small_graph, d=3)
        word = stem("revenue")
        entries = [
            entry
            for _w, _pid, entry in indexes.root_first.iter_entries()
            if _w == word and entry.matched_on_edge
        ]
        assert entries, "expected edge-matched postings for 'revenue'"
        # The 3-node edge-matched path Software->Company->(Revenue text).
        assert any(entry.size == 3 for entry in entries)

    def test_edge_match_pr_is_source_node(self, small_graph):
        ranks = [0.1, 0.7, 0.2]
        indexes = build_indexes(small_graph, d=2, pagerank_scores=ranks)
        word = stem("revenue")
        for _w, _pid, entry in indexes.root_first.iter_entries():
            if _w == word and entry.matched_on_edge and entry.size == 2:
                # Path (company, text): matched node is company (id 1).
                assert entry.pr == 0.7

    def test_pattern_ids_shared_between_indexes(self, small_graph):
        indexes = build_indexes(small_graph, d=3)
        word = stem("microsoft")
        pf_pids = set(indexes.pattern_first.patterns(word))
        rf_pids = set()
        for root in indexes.root_first.roots(word):
            rf_pids.update(indexes.root_first.patterns(word, root))
        assert pf_pids == rf_pids

    def test_bad_d_rejected(self, small_graph):
        with pytest.raises(PathIndexError):
            build_indexes(small_graph, d=0)

    def test_pagerank_length_checked(self, small_graph):
        with pytest.raises(PathIndexError):
            build_indexes(small_graph, d=2, pagerank_scores=[1.0])

    def test_roots_restriction(self, small_graph):
        indexes = build_indexes(small_graph, d=3, roots=[1])
        for _word, _pid, entry in indexes.root_first.iter_entries():
            assert entry.root == 1

    def test_default_pagerank_computed(self, small_graph):
        indexes = build_indexes(small_graph, d=2)
        assert len(indexes.pagerank_scores) == small_graph.num_nodes
        assert all(score > 0 for score in indexes.pagerank_scores)

    def test_index_growth_with_d(self, small_graph):
        sizes = [
            build_indexes(small_graph, d=d).num_entries for d in (1, 2, 3)
        ]
        assert sizes[0] < sizes[1] < sizes[2]


class TestResolveQuery:
    def test_normalizes(self, small_graph):
        indexes = build_indexes(small_graph, d=2)
        assert indexes.resolve_query("Microsoft REVENUE") == (
            stem("microsoft"),
            stem("revenue"),
        )

    def test_unknown_words_kept(self, small_graph):
        indexes = build_indexes(small_graph, d=2)
        words = indexes.resolve_query("xylophone")
        assert words == (stem("xylophone"),)

    def test_synonym_canonicalization(self):
        from repro.kg.synonyms import SynonymTable

        graph = KnowledgeGraph()
        graph.add_node("Movie", "Alien")
        synonyms = SynonymTable([["movie", "film"]])
        indexes = build_indexes(graph, d=1, synonyms=synonyms)
        assert indexes.resolve_query("film") == (stem("movie"),)


class TestStatistics:
    def test_counts_consistent(self, small_graph):
        indexes = build_indexes(small_graph, d=3)
        stats = index_statistics(indexes)
        assert stats.num_entries == indexes.num_entries
        assert stats.num_patterns == indexes.num_patterns
        assert stats.total_path_nodes >= stats.num_entries
        assert stats.estimated_bytes > 0
        assert stats.d == 3

    def test_format(self, small_graph):
        indexes = build_indexes(small_graph, d=2)
        text = index_statistics(indexes).format()
        assert "entries" in text
        assert "d=2" in text


class TestSerialization:
    def test_roundtrip(self, small_graph, tmp_path):
        indexes = build_indexes(
            small_graph,
            d=3,
            normalizer=EXAMPLE_NORMALIZER,
            pagerank_scores=uniform_scores(small_graph),
        )
        path = tmp_path / "index.bin"
        size = save_indexes(indexes, path)
        assert size > 0
        loaded = load_indexes(path)
        assert loaded.d == indexes.d
        assert loaded.num_entries == indexes.num_entries
        # The loaded index answers queries identically.
        from repro.search.pattern_enum import pattern_enum_search

        before = pattern_enum_search(indexes, "microsoft revenue", k=5)
        after = pattern_enum_search(loaded, "microsoft revenue", k=5)
        assert before.scores() == after.scores()

    def test_missing_file(self, tmp_path):
        with pytest.raises(PathIndexError):
            load_indexes(tmp_path / "absent.bin")

    def test_not_an_index_file(self, tmp_path):
        import pickle

        path = tmp_path / "junk.bin"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(PathIndexError):
            load_indexes(path)

    def test_corrupt_bytes(self, tmp_path):
        path = tmp_path / "corrupt.bin"
        path.write_bytes(b"\x00\x01\x02not a pickle")
        with pytest.raises(PathIndexError):
            load_indexes(path)

    def test_version_mismatch(self, small_graph, tmp_path):
        import pickle

        from repro.index import serialize

        indexes = build_indexes(small_graph, d=2)
        envelope = {
            "format": serialize.FORMAT_NAME,
            "version": 999,
            "d": 2,
            "num_entries": indexes.num_entries,
            "payload": indexes,
        }
        path = tmp_path / "future.bin"
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PathIndexError):
            load_indexes(path)
