"""KnowledgeBase container and entity value objects."""

import pytest

from repro.core.errors import KnowledgeBaseError
from repro.kg.entity import AttributeType, Entity, EntityRef, EntityType, TextValue
from repro.kg.knowledge_base import KnowledgeBase


class TestValueObjects:
    def test_entity_type_text_defaults_to_name(self):
        assert EntityType("Software").text == "Software"
        assert EntityType("Software", "software product").text == "software product"

    def test_attribute_type_text_defaults_to_name(self):
        assert AttributeType("Revenue").text == "Revenue"

    def test_entity_text_defaults_to_name(self):
        entity = Entity(name="SQL Server", type_name="Software")
        assert entity.text == "SQL Server"

    def test_add_attribute_accumulates(self):
        entity = Entity(name="Microsoft", type_name="Company")
        entity.add_attribute("Products", EntityRef("Windows"))
        entity.add_attribute("Products", EntityRef("Bing"))
        assert entity.attributes["Products"] == [
            EntityRef("Windows"),
            EntityRef("Bing"),
        ]
        assert entity.attribute_names() == ["Products"]


class TestKnowledgeBase:
    def test_add_and_lookup(self):
        kb = KnowledgeBase()
        kb.add_entity("SQL Server", "Software")
        assert kb.has_entity("SQL Server")
        assert "SQL Server" in kb
        assert kb.entity("SQL Server").type_name == "Software"
        assert len(kb) == 1

    def test_duplicate_entity_rejected(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "T")
        with pytest.raises(KnowledgeBaseError):
            kb.add_entity("A", "T")

    def test_unknown_entity_raises(self):
        kb = KnowledgeBase()
        with pytest.raises(KnowledgeBaseError):
            kb.entity("ghost")
        with pytest.raises(KnowledgeBaseError):
            kb.set_attribute("ghost", "x", TextValue("y"))

    def test_string_value_coerced_to_text(self):
        kb = KnowledgeBase()
        kb.add_entity("Microsoft", "Company")
        kb.set_attribute("Microsoft", "Revenue", "US$ 77 billion")
        values = kb.entity("Microsoft").attributes["Revenue"]
        assert values == [TextValue("US$ 77 billion")]

    def test_bad_value_type_rejected(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "T")
        with pytest.raises(KnowledgeBaseError):
            kb.set_attribute("A", "x", 3.14)

    def test_type_redeclaration_same_text_ok(self):
        kb = KnowledgeBase()
        kb.declare_entity_type("Software")
        kb.declare_entity_type("Software")
        assert kb.entity_type("Software").text == "Software"

    def test_type_redeclaration_conflicting_text_rejected(self):
        kb = KnowledgeBase()
        kb.declare_entity_type("Software", "software")
        with pytest.raises(KnowledgeBaseError):
            kb.declare_entity_type("Software", "different text")

    def test_attr_type_conflict_rejected(self):
        kb = KnowledgeBase()
        kb.declare_attribute_type("Revenue", "revenue")
        with pytest.raises(KnowledgeBaseError):
            kb.declare_attribute_type("Revenue", "income")

    def test_implicit_type_declaration(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "NewType")
        assert kb.entity_type("NewType").name == "NewType"

    def test_unknown_type_lookup_raises(self):
        kb = KnowledgeBase()
        with pytest.raises(KnowledgeBaseError):
            kb.entity_type("nope")
        with pytest.raises(KnowledgeBaseError):
            kb.attribute_type("nope")

    def test_dangling_references_detected(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "T")
        kb.set_attribute("A", "rel", EntityRef("missing"))
        assert kb.dangling_references() == ["missing"]
        with pytest.raises(KnowledgeBaseError):
            kb.validate()

    def test_validate_passes_when_complete(self):
        kb = KnowledgeBase()
        kb.add_entity("A", "T")
        kb.add_entity("B", "T")
        kb.set_attribute("A", "rel", EntityRef("B"))
        kb.validate()

    def test_bulk_add(self):
        kb = KnowledgeBase()
        count = kb.add_entities([("A", "T1"), ("B", "T2")])
        assert count == 2
        assert kb.entity("B").type_name == "T2"

    def test_bulk_add_default_type(self):
        kb = KnowledgeBase()
        kb.add_entities(["A", "B"], default_type="Thing")
        assert kb.entity("A").type_name == "Thing"

    def test_bulk_add_missing_type_raises(self):
        kb = KnowledgeBase()
        with pytest.raises(KnowledgeBaseError):
            kb.add_entities(["A"])

    def test_entities_iteration_order(self):
        kb = KnowledgeBase()
        kb.add_entity("B", "T")
        kb.add_entity("A", "T")
        assert [e.name for e in kb.entities()] == ["B", "A"]
