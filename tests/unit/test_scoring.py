"""Scoring functions, components, and aggregation (Section 2.2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ScoringError
from repro.scoring.aggregate import (
    AVG,
    COUNT,
    MAX,
    SUM,
    RunningAggregate,
    aggregate,
    estimate_from_sample,
    validate_aggregator,
)
from repro.scoring.components import (
    PathComponents,
    SubtreeComponents,
    sum_components,
)
from repro.scoring.function import COUNT_TREES, PAPER_DEFAULT, ScoringFunction

positive_floats = st.floats(min_value=0.01, max_value=1e4)


class TestAggregate:
    def test_sum_avg_max_count(self):
        scores = [1.0, 3.0, 2.0]
        assert aggregate(SUM, scores) == 6.0
        assert aggregate(AVG, scores) == 2.0
        assert aggregate(MAX, scores) == 3.0
        assert aggregate(COUNT, scores) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ScoringError):
            aggregate(SUM, [])

    def test_unknown_aggregator(self):
        with pytest.raises(ScoringError):
            validate_aggregator("median")
        with pytest.raises(ScoringError):
            aggregate("median", [1.0])

    def test_estimate_scales_sum_and_count(self):
        assert estimate_from_sample(SUM, [2.0, 4.0], 0.5) == 12.0
        assert estimate_from_sample(COUNT, [2.0, 4.0], 0.5) == 4.0
        assert estimate_from_sample(AVG, [2.0, 4.0], 0.5) == 3.0
        assert estimate_from_sample(MAX, [2.0, 4.0], 0.5) == 4.0

    def test_estimate_empty_sample_is_zero(self):
        assert estimate_from_sample(SUM, [], 0.5) == 0.0

    def test_estimate_bad_rate(self):
        with pytest.raises(ScoringError):
            estimate_from_sample(SUM, [1.0], 0.0)
        with pytest.raises(ScoringError):
            estimate_from_sample(SUM, [1.0], 1.5)


class TestRunningAggregate:
    @pytest.mark.parametrize("name", [SUM, AVG, MAX, COUNT])
    def test_matches_batch(self, name):
        scores = [1.5, 0.5, 2.5, 2.5]
        running = RunningAggregate(name)
        for score in scores:
            running.add(score)
        assert running.value() == aggregate(name, scores)

    def test_value_requires_scores(self):
        with pytest.raises(ScoringError):
            RunningAggregate(SUM).value()

    def test_merge(self):
        a = RunningAggregate(SUM)
        b = RunningAggregate(SUM)
        a.add(1.0)
        b.add(2.0)
        a.merge(b)
        assert a.value() == 3.0
        assert a.count == 2

    def test_merge_mismatched_rejected(self):
        with pytest.raises(ScoringError):
            RunningAggregate(SUM).merge(RunningAggregate(MAX))

    def test_estimate_matches_function(self):
        running = RunningAggregate(SUM)
        running.add(2.0)
        running.add(4.0)
        assert running.estimate(0.5) == estimate_from_sample(SUM, [2.0, 4.0], 0.5)

    def test_estimate_empty_is_zero(self):
        assert RunningAggregate(SUM).estimate(0.5) == 0.0


class TestComponents:
    def test_sum_components(self):
        total = sum_components(
            [PathComponents(2, 1.0, 0.5), PathComponents(3, 2.0, 1.0)]
        )
        assert total == SubtreeComponents(size=5, pr=3.0, sim=1.5)

    def test_as_list(self):
        assert SubtreeComponents(2, 1.0, 0.5).as_list() == [2.0, 1.0, 0.5]


class TestScoringFunction:
    def test_paper_example_24(self):
        """Example 2.4: score(T1) with uniform PageRank."""
        components = SubtreeComponents(size=8, pr=4.0, sim=3.5)
        assert PAPER_DEFAULT.subtree_score(components) == pytest.approx(
            (1 / 8) * 4.0 * 3.5
        )

    def test_t3_score(self):
        components = SubtreeComponents(size=7, pr=4.0, sim=1 / 6 + 1 / 6 + 2)
        assert PAPER_DEFAULT.subtree_score(components) == pytest.approx(
            4.0 * (7 / 3) / 7
        )

    def test_zero_weight_skips_component(self):
        scoring = ScoringFunction(z1=0.0, z2=0.0, z3=0.0)
        assert scoring.subtree_score(SubtreeComponents(5, 2.0, 0.1)) == 1.0

    def test_nonpositive_component_raises(self):
        with pytest.raises(ScoringError):
            PAPER_DEFAULT.subtree_score(SubtreeComponents(0, 1.0, 1.0))

    def test_bad_aggregator_rejected(self):
        with pytest.raises(ScoringError):
            ScoringFunction(aggregator="median")

    def test_extras(self):
        scoring = ScoringFunction(z1=0, z2=0, z3=0, extra_weights=(2.0,))
        assert scoring.subtree_score(
            SubtreeComponents(1, 1.0, 1.0), extras=[3.0]
        ) == pytest.approx(9.0)

    def test_extras_arity_checked(self):
        scoring = ScoringFunction(extra_weights=(1.0,))
        with pytest.raises(ScoringError):
            scoring.subtree_score(SubtreeComponents(1, 1.0, 1.0), extras=[])

    def test_extras_nonpositive_rejected(self):
        scoring = ScoringFunction(z1=0, z2=0, z3=0, extra_weights=(1.0,))
        with pytest.raises(ScoringError):
            scoring.subtree_score(SubtreeComponents(1, 1.0, 1.0), extras=[0.0])

    def test_subtree_score_from_paths(self):
        parts = [PathComponents(2, 1.0, 0.5), PathComponents(1, 1.0, 1.0)]
        expected = PAPER_DEFAULT.subtree_score(SubtreeComponents(3, 2.0, 1.5))
        assert PAPER_DEFAULT.subtree_score_from_paths(parts) == pytest.approx(
            expected
        )

    def test_count_trees_function(self):
        assert COUNT_TREES.pattern_score([0.1, 0.2, 0.3]) == 3.0

    @given(
        st.integers(min_value=1, max_value=30),
        positive_floats,
        positive_floats,
    )
    def test_smaller_trees_score_higher(self, size, pr, sim):
        """z1 = -1 means adding size strictly lowers the score."""
        small = PAPER_DEFAULT.subtree_score(SubtreeComponents(size, pr, sim))
        large = PAPER_DEFAULT.subtree_score(SubtreeComponents(size + 1, pr, sim))
        assert small > large

    @given(positive_floats, positive_floats)
    def test_higher_similarity_scores_higher(self, pr, sim):
        low = PAPER_DEFAULT.subtree_score(SubtreeComponents(3, pr, sim))
        high = PAPER_DEFAULT.subtree_score(SubtreeComponents(3, pr, sim * 2))
        assert high > low

    def test_pattern_estimate_delegates(self):
        assert PAPER_DEFAULT.pattern_estimate([1.0, 2.0], 0.5) == 6.0

    def test_running_matches_aggregator(self):
        running = ScoringFunction(aggregator=MAX).running()
        running.add(1.0)
        running.add(5.0)
        assert running.value() == 5.0
