"""The command-line interface: build, search, stats."""

import json

import pytest

from repro.cli import main
from repro.kg.loaders.jsonkb import dump_json_kb
from repro.datasets.example import example_kb


@pytest.fixture()
def kb_file(tmp_path):
    path = tmp_path / "kb.json"
    path.write_text(json.dumps(dump_json_kb(example_kb())))
    return path


@pytest.fixture()
def index_file(kb_file, tmp_path):
    path = tmp_path / "kb.idx"
    code = main(["build", str(kb_file), "-d", "3", "-o", str(path)])
    assert code == 0
    return path


class TestBuild:
    def test_build_writes_index(self, kb_file, tmp_path, capsys):
        out_path = tmp_path / "out.idx"
        code = main(["build", str(kb_file), "-o", str(out_path)])
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "entries" in out
        assert "wrote" in out

    def test_build_missing_file_errors(self, tmp_path, capsys):
        code = main(
            ["build", str(tmp_path / "absent.json"), "-o", str(tmp_path / "x")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_build_ntriples(self, tmp_path, capsys):
        nt = tmp_path / "kb.nt"
        nt.write_text(
            '<http://e/A> <http://e/rel> <http://e/B> .\n'
            '<http://e/A> <http://www.w3.org/2000/01/rdf-schema#label> "Apple thing" .\n'
        )
        out_path = tmp_path / "nt.idx"
        code = main(
            ["build", str(nt), "--format", "ntriples", "-o", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()


class TestSearch:
    def test_search_prints_table(self, index_file, capsys):
        # The CLI builds with the default normalizer and real PageRank, so
        # scores differ from the paper's uniform-PR walkthrough; the top
        # pattern and its table rows are the same.
        code = main(
            ["search", str(index_file), "database software company revenue",
             "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(Software) (Genre) (Model)" in out
        assert "SQL Server" in out
        assert "Oracle DB" in out

    def test_search_no_answers_exit_code(self, index_file, capsys):
        code = main(["search", str(index_file), "xylophone"])
        assert code == 1
        assert "no answers" in capsys.readouterr().out

    def test_search_letopk_with_sampling_flags(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company",
             "--algorithm", "letopk",
             "--sampling-rate", "0.5", "--sampling-threshold", "0"]
        )
        assert code == 0
        assert "linear_topk" in capsys.readouterr().out

    def test_search_baseline(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "microsoft revenue",
             "--algorithm", "baseline"]
        )
        assert code == 0

    def test_search_linear_full(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company",
             "--algorithm", "linear_full"]
        )
        assert code == 0
        assert "linear_enum" in capsys.readouterr().out

    def test_search_explain_prints_pruning(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruning: roots_skipped=" in out
        assert "prefixes_skipped=" in out
        assert "k-th score trajectory" in out

    def test_search_explain_on_empty_result(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "xylophone", "--explain"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "no answers" in out
        assert "pruning:" in out

    def test_search_rejects_mismatched_sampling_flags(
        self, index_file, capsys
    ):
        # One-shot commands keep loud plan-time validation: sampling
        # flags with a non-sampling algorithm are an error, not inert.
        code = main(
            ["search", str(index_file), "software company",
             "--algorithm", "pattern_enum", "--sampling-rate", "0.5"]
        )
        assert code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_search_no_prune_matches_pruned(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company", "--no-prune"]
        )
        assert code == 0
        unpruned = capsys.readouterr().out
        code = main(["search", str(index_file), "software company"])
        assert code == 0
        pruned = capsys.readouterr().out
        # Identical answers either way; only the stats line may differ.
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("pattern_enum:")
        ]
        assert strip(unpruned) == strip(pruned)


class TestPlan:
    def test_plan_prints_without_searching(self, index_file, capsys):
        code = main(
            ["plan", str(index_file), "database software company", "-k", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm=pattern_enum" in out
        assert "k=7" in out
        assert "'databas'" in out          # resolved (stemmed) keywords
        assert "postings=" in out
        assert "score=" not in out         # no answers were produced

    def test_search_explain_includes_plan(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: algorithm=pattern_enum" in out
        assert "pruning: roots_skipped=" in out

    def test_plan_canonicalizes_alias(self, index_file, capsys):
        code = main(
            ["plan", str(index_file), "software", "--algorithm", "letopk"]
        )
        assert code == 0
        assert "algorithm=linear_topk" in capsys.readouterr().out


class TestServe:
    def _serve(self, index_file, lines, monkeypatch, extra=()):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("\n".join(lines) + "\n")
        )
        return main(["serve", str(index_file), *extra])

    def test_serve_answers_a_stream(self, index_file, capsys, monkeypatch):
        code = self._serve(
            index_file,
            ["software company", "software company", ":stats", ":quit"],
            monkeypatch,
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("--- #1") == 2
        assert "(cached)" in out            # second answer came from cache
        assert "result cache 1/2 hits" in out

    def test_serve_meta_commands(self, index_file, capsys, monkeypatch):
        code = self._serve(
            index_file,
            [
                ":help", ":k 2", ":algorithm letopk", ":explain",
                "software company", ":k x", ":algorithm quantum", ":wat",
            ],
            monkeypatch,
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "explain on" in out
        assert "plan: algorithm=linear_topk k=2" in out
        assert "error: :k needs an integer" in out
        assert "error: unknown algorithm 'quantum'" in out
        assert "error: unknown command ':wat'" in out

    def test_serve_forwards_algorithm_flags(
        self, index_file, capsys, monkeypatch
    ):
        # --no-prune (and the sampling flags) must reach the plans serve
        # builds, not just search/batch.
        code = self._serve(
            index_file,
            [":explain", "software company"],
            monkeypatch,
            extra=["--no-prune"],
        )
        assert code == 0
        assert "prune=False" in capsys.readouterr().out

    def test_serve_algorithm_switch_warns_and_drops_inapplicable_flags(
        self, index_file, capsys, monkeypatch
    ):
        # A --sampling-rate given for the starting letopk must not
        # poison the session after :algorithm pattern_enum — but the
        # drop must be audible, not silent.
        code = self._serve(
            index_file,
            [":algorithm pattern_enum", "software company"],
            monkeypatch,
            extra=["--algorithm", "letopk", "--sampling-rate", "0.5"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warning: ignoring" in out
        assert "does not accept sampling_rate" in out
        assert "--- #1" in out
        assert "error:" not in out

    def test_serve_applicable_flags_stay_silent(
        self, index_file, capsys, monkeypatch
    ):
        # No warning when every flag applies to the session algorithm.
        code = self._serve(
            index_file,
            ["software company"],
            monkeypatch,
            extra=["--algorithm", "letopk", "--sampling-rate", "0.5",
                   "--sampling-threshold", "2"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warning:" not in out
        assert "--- #1" in out

    def test_serve_http_rejects_bad_address(self, index_file, capsys):
        code = main(["serve", str(index_file), "--http", "nonsense"])
        assert code == 2
        assert "--http wants HOST:PORT" in capsys.readouterr().err

    def test_serve_bad_query_keeps_serving(
        self, index_file, capsys, monkeypatch
    ):
        code = self._serve(
            index_file, ["???", "software company"], monkeypatch
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error:" in out
        assert "--- #1" in out


class TestBatch:
    def test_batch_runs_a_file(self, index_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "software company\n"
            "# a comment\n"
            "  # an indented comment\n"
            "\n"
            "database revenue\n"
            "software company\n"
        )
        code = main(
            ["batch", str(index_file), str(queries), "--threads", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("answers") == 3    # blank + comment lines skipped
        assert "(cached)" in out            # duplicate query deduplicated
        assert "QPS" in out
        assert "service:" in out

    def test_batch_missing_file(self, index_file, tmp_path, capsys):
        code = main(
            ["batch", str(index_file), str(tmp_path / "absent.txt")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_empty_file(self, index_file, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n# only comments\n")
        code = main(["batch", str(index_file), str(empty)])
        assert code == 2
        assert "no queries" in capsys.readouterr().err

    def test_batch_uniform_jsonl_workload(
        self, index_file, tmp_path, capsys
    ):
        # A workload without overrides rides the search_many batch path
        # (threads allowed), exactly like a plain query file.
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"query": "software company"}\n'
            '{"query": "database revenue"}\n'
            '{"query": "software company"}\n'
        )
        code = main(
            ["batch", str(index_file), str(workload), "--threads", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("answers") == 3
        assert "(cached)" in out

    def test_batch_mixed_jsonl_replays_in_order(
        self, index_file, tmp_path, capsys
    ):
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"query": "software company", "k": 2}\n'
            '{"kind": "invalidate"}\n'
            '{"query": "software company", "k": 2}\n'
        )
        code = main(["batch", str(index_file), str(workload)])
        assert code == 0
        out = capsys.readouterr().out
        assert ":invalidate: caches flushed" in out
        assert "1 invalidations" in out
        assert "sequential replay" in out
        # The writer tick flushed the result cache between the repeats.
        assert "(cached)" not in out

    def test_batch_mixed_jsonl_rejects_threads(
        self, index_file, tmp_path, capsys
    ):
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"query": "software company", "k": 2}\n'
            '{"kind": "invalidate"}\n'
        )
        code = main(
            ["batch", str(index_file), str(workload), "--threads", "2"]
        )
        assert code == 2
        assert "replay in order" in capsys.readouterr().err

    def test_batch_jsonl_per_request_overrides(
        self, index_file, tmp_path, capsys
    ):
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"query": "software company", "k": 1}\n'
            '{"query": "software company", "algorithm": "letopk", '
            '"params": {"sampling_rate": 0.5, "sampling_threshold": 2, '
            '"seed": 7}}\n'
        )
        code = main(["batch", str(index_file), str(workload)])
        assert code == 0
        assert capsys.readouterr().out.count("answers") == 2

    def test_batch_bad_jsonl_errors(self, index_file, tmp_path, capsys):
        workload = tmp_path / "workload.jsonl"
        workload.write_text('{"query": "x", "wat": 1}\n')
        code = main(["batch", str(index_file), str(workload)])
        assert code == 2
        assert "unknown fields" in capsys.readouterr().err


class TestStats:
    def test_stats(self, index_file, capsys):
        code = main(["stats", str(index_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "d=3" in out

    def test_stats_missing_index(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "absent.idx")])
        assert code == 2


class TestSharding:
    def test_search_with_shards_explains_dispatch(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company",
             "--shards", "2", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharding: dispatched=" in out
        assert "/2 shards" in out

    def test_search_matches_unsharded(self, index_file, capsys):
        assert main(["search", str(index_file), "software company"]) == 0
        plain = capsys.readouterr().out
        assert main(
            ["search", str(index_file), "software company", "--shards", "3"]
        ) == 0
        sharded = capsys.readouterr().out

        def answer_lines(text):
            # Drop the stats footer: timings and shard counters differ.
            return [line for line in text.splitlines()
                    if " ms roots=" not in line]

        assert answer_lines(sharded) == answer_lines(plain)

    def test_search_rejects_bad_shard_count(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company", "--shards", "0"]
        )
        assert code == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_batch_with_shards(self, index_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("software company\ndatabase revenue\n")
        code = main(
            ["batch", str(index_file), str(queries), "--shards", "2"]
        )
        assert code == 0
        assert capsys.readouterr().out.count("answers") == 2

    def test_batch_processes_keeps_subtree_rows(
        self, index_file, tmp_path, capsys
    ):
        # The old CLI refused --processes without --no-subtrees; the
        # fork path now ships subtree rows back as portable tuples.
        queries = tmp_path / "queries.txt"
        queries.write_text("software company\ndatabase revenue\n")
        code = main(
            ["batch", str(index_file), str(queries), "--processes", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("answers") == 2
        assert "error" not in out

    def test_batch_processes_with_no_subtrees_runs(
        self, index_file, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("software company\ndatabase revenue\n")
        code = main(
            ["batch", str(index_file), str(queries),
             "--processes", "1", "--no-subtrees"]
        )
        assert code == 0
        assert capsys.readouterr().out.count("answers") == 2

    def test_batch_processes_and_shards_conflict(
        self, index_file, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("software company\n")
        code = main(
            ["batch", str(index_file), str(queries),
             "--processes", "2", "--no-subtrees", "--shards", "2"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_serve_with_shards(self, index_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("software company\n")
        )
        code = main(["serve", str(index_file), "--shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- #1" in out
        assert "execution backend: sharded (2 workers)" in out

    def test_serve_with_processes(self, index_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("software company\n")
        )
        code = main(["serve", str(index_file), "--processes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- #1" in out
        assert "execution backend: fork-pool (2 workers)" in out

    def test_serve_with_processes_and_shards(
        self, index_file, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("software company\n")
        )
        code = main(
            ["serve", str(index_file), "--processes", "2", "--shards", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "--- #1" in out
        assert "execution backend: fork-pool+sharded (2 workers)" in out

    def test_serve_rejects_bad_process_count(self, index_file, capsys):
        code = main(["serve", str(index_file), "--processes", "0"])
        assert code == 2
        assert "--processes must be >= 1" in capsys.readouterr().err
