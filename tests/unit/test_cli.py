"""The command-line interface: build, search, stats."""

import json

import pytest

from repro.cli import main
from repro.kg.loaders.jsonkb import dump_json_kb
from repro.datasets.example import example_kb


@pytest.fixture()
def kb_file(tmp_path):
    path = tmp_path / "kb.json"
    path.write_text(json.dumps(dump_json_kb(example_kb())))
    return path


@pytest.fixture()
def index_file(kb_file, tmp_path):
    path = tmp_path / "kb.idx"
    code = main(["build", str(kb_file), "-d", "3", "-o", str(path)])
    assert code == 0
    return path


class TestBuild:
    def test_build_writes_index(self, kb_file, tmp_path, capsys):
        out_path = tmp_path / "out.idx"
        code = main(["build", str(kb_file), "-o", str(out_path)])
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "entries" in out
        assert "wrote" in out

    def test_build_missing_file_errors(self, tmp_path, capsys):
        code = main(
            ["build", str(tmp_path / "absent.json"), "-o", str(tmp_path / "x")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_build_ntriples(self, tmp_path, capsys):
        nt = tmp_path / "kb.nt"
        nt.write_text(
            '<http://e/A> <http://e/rel> <http://e/B> .\n'
            '<http://e/A> <http://www.w3.org/2000/01/rdf-schema#label> "Apple thing" .\n'
        )
        out_path = tmp_path / "nt.idx"
        code = main(
            ["build", str(nt), "--format", "ntriples", "-o", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()


class TestSearch:
    def test_search_prints_table(self, index_file, capsys):
        # The CLI builds with the default normalizer and real PageRank, so
        # scores differ from the paper's uniform-PR walkthrough; the top
        # pattern and its table rows are the same.
        code = main(
            ["search", str(index_file), "database software company revenue",
             "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(Software) (Genre) (Model)" in out
        assert "SQL Server" in out
        assert "Oracle DB" in out

    def test_search_no_answers_exit_code(self, index_file, capsys):
        code = main(["search", str(index_file), "xylophone"])
        assert code == 1
        assert "no answers" in capsys.readouterr().out

    def test_search_letopk_with_sampling_flags(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company",
             "--algorithm", "letopk",
             "--sampling-rate", "0.5", "--sampling-threshold", "0"]
        )
        assert code == 0
        assert "linear_topk" in capsys.readouterr().out

    def test_search_baseline(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "microsoft revenue",
             "--algorithm", "baseline"]
        )
        assert code == 0

    def test_search_linear_full(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company",
             "--algorithm", "linear_full"]
        )
        assert code == 0
        assert "linear_enum" in capsys.readouterr().out

    def test_search_explain_prints_pruning(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruning: roots_skipped=" in out
        assert "prefixes_skipped=" in out
        assert "k-th score trajectory" in out

    def test_search_explain_on_empty_result(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "xylophone", "--explain"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "no answers" in out
        assert "pruning:" in out

    def test_search_no_prune_matches_pruned(self, index_file, capsys):
        code = main(
            ["search", str(index_file), "software company", "--no-prune"]
        )
        assert code == 0
        unpruned = capsys.readouterr().out
        code = main(["search", str(index_file), "software company"])
        assert code == 0
        pruned = capsys.readouterr().out
        # Identical answers either way; only the stats line may differ.
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("pattern_enum:")
        ]
        assert strip(unpruned) == strip(pruned)


class TestStats:
    def test_stats(self, index_file, capsys):
        code = main(["stats", str(index_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "d=3" in out

    def test_stats_missing_index(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "absent.idx")])
        assert code == 2
