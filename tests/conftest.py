"""Shared fixtures: the paper's example and small synthetic datasets.

Index construction is the expensive step, so graph+index bundles are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.datasets.example import (
    EXAMPLE_NORMALIZER,
    EXAMPLE_QUERY,
    example_graph_with_nodes,
)
from repro.datasets.imdb import ImdbConfig, generate_imdb_graph
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import build_indexes
from repro.kg.pagerank import uniform_scores

#: Keep synthetic fixtures small: the functional tests need structure, not
#: scale (benchmarks own the larger configurations).
WIKI_TEST_CONFIG = WikiConfig(
    num_entities=400, num_types=12, num_attrs=20, vocabulary_size=120, seed=7
)
IMDB_TEST_CONFIG = ImdbConfig(
    num_movies=120, num_people=150, num_companies=12, seed=7
)


@pytest.fixture(scope="session")
def example_bundle():
    """(graph, name->node map, indexes) for the Figure 1 example.

    Built with the paper-exact normalizer (no stopwords) and uniform node
    importance so Example 2.4's numbers hold verbatim.
    """
    graph, nodes = example_graph_with_nodes()
    indexes = build_indexes(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )
    return graph, nodes, indexes


@pytest.fixture(scope="session")
def example_indexes(example_bundle):
    return example_bundle[2]


@pytest.fixture(scope="session")
def example_query():
    return EXAMPLE_QUERY


@pytest.fixture(scope="session")
def wiki_indexes():
    """Small wiki-like graph indexed at d=3 (default scoring pipeline)."""
    graph = generate_wiki_graph(WIKI_TEST_CONFIG)
    return build_indexes(graph, d=3)


@pytest.fixture(scope="session")
def imdb_indexes():
    """Small IMDB-like graph indexed at d=3."""
    graph = generate_imdb_graph(IMDB_TEST_CONFIG)
    return build_indexes(graph, d=3)
