"""Bound-driven pruning: differential tests and admissibility proofs.

The contract of ``docs/pruning.md``: with ``prune=True`` every algorithm
returns **bit-identical answers** to its unpruned self (and therefore to
the entry-based reference oracle, which ``test_id_enumeration`` pins the
unpruned walk against) — only the work counters differ.  This suite
checks that equivalence on fixtures and on hypothesis-generated graphs,
the admissibility of the bounds themselves, the staleness guard on the
store's aggregate bound columns, and the :class:`TopKThreshold`
trajectory plumbing.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.builder import build_indexes
from repro.scoring.aggregate import AGGREGATORS
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.context import EnumerationContext
from repro.search.individual import individual_topk
from repro.search.linear_enum import linear_enum
from repro.search.linear_topk import linear_topk_search
from repro.search.mixed import mixed_search
from repro.search.pattern_enum import pattern_enum_search

# Reuse the randomized-graph strategy that already exercises the
# enumeration layer.
from tests.search.test_id_enumeration import random_graph_and_query

SEARCHES = {
    "pattern_enum": (pattern_enum_search, {}),
    "linear": (linear_topk_search, {}),
    "linear_topk_sampled": (
        linear_topk_search,
        {"sampling_threshold": 0, "sampling_rate": 0.5, "seed": 11},
    ),
}


def assert_same_answers(pruned, unpruned):
    """Answers bit-equal: scores, keys, row counts, subtrees, estimates."""
    assert pruned.query == unpruned.query
    assert pruned.num_answers == unpruned.num_answers
    for ours, theirs in zip(pruned.answers, unpruned.answers):
        assert ours.pattern_key == theirs.pattern_key
        assert ours.score == theirs.score  # bit-equal, not approx
        assert ours.num_subtrees == theirs.num_subtrees
        assert ours.estimated_score == theirs.estimated_score
        assert list(ours.subtrees) == list(theirs.subtrees)


def run_search_pair(indexes, query, name, k=10, **kwargs):
    search, extra = SEARCHES[name]
    params = {**extra, **kwargs}
    assert_same_answers(
        search(indexes, query, k=k, prune=True, **params),
        search(indexes, query, k=k, prune=False, **params),
    )


class TestPrunedEqualsUnpruned:
    @pytest.mark.parametrize("name", sorted(SEARCHES))
    @pytest.mark.parametrize("k", [1, 3, 20])
    def test_example(self, example_indexes, example_query, name, k):
        run_search_pair(example_indexes, example_query, name, k=k)

    @pytest.mark.parametrize("name", sorted(SEARCHES))
    def test_example_no_subtrees(self, example_indexes, example_query, name):
        run_search_pair(
            example_indexes, example_query, name, keep_subtrees=False
        )

    @pytest.mark.parametrize("name", sorted(SEARCHES))
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_wiki_workload(self, wiki_indexes, name, k):
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=2, max_keywords=4, seed=17),
        )
        assert queries
        for query in queries:
            run_search_pair(wiki_indexes, query, name, k=k)

    @pytest.mark.parametrize(
        "aggregator", sorted(set(AGGREGATORS) - {"sum"})
    )
    def test_non_default_aggregators(
        self, example_indexes, example_query, aggregator
    ):
        scoring = ScoringFunction(aggregator=aggregator)
        for name in ("pattern_enum", "linear"):
            run_search_pair(
                example_indexes, example_query, name, scoring=scoring
            )

    def test_individual_wiki(self, wiki_indexes):
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=2, max_keywords=3, seed=17),
        )
        for query in queries:
            for k in (1, 5, 20):
                pruned = individual_topk(wiki_indexes, query, k=k, prune=True)
                unpruned = individual_topk(
                    wiki_indexes, query, k=k, prune=False
                )
                assert pruned.scores() == unpruned.scores()
                assert [
                    (key, tuple(combo.pairs))
                    for _s, key, combo in pruned.ranked
                ] == [
                    (key, tuple(combo.pairs))
                    for _s, key, combo in unpruned.ranked
                ]

    @pytest.mark.parametrize(
        "scoring",
        [
            # Negative/zero exponents flip the bound's extreme picks and
            # the sorted-sim run direction (regression: a z3 < 0 scoring
            # once made the descending-sim run-break inadmissible and
            # individual_topk dropped true top-k answers).
            ScoringFunction(z3=-1.0),
            ScoringFunction(z1=1.0, z2=-1.0, z3=-1.0),
            ScoringFunction(z1=0.0, z2=0.0, z3=-1.0),
        ],
        ids=["neg-sim", "all-flipped", "sim-only-neg"],
    )
    def test_sign_flipped_scorings(self, wiki_indexes, scoring):
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=1, max_keywords=3, seed=17),
        )
        for query in queries:
            for k in (2, 10):
                run_search_pair(
                    wiki_indexes, query, "pattern_enum", k=k, scoring=scoring
                )
                run_search_pair(
                    wiki_indexes, query, "linear", k=k, scoring=scoring
                )
                pruned = individual_topk(
                    wiki_indexes, query, k=k, scoring=scoring, prune=True
                )
                unpruned = individual_topk(
                    wiki_indexes, query, k=k, scoring=scoring, prune=False
                )
                assert pruned.scores() == unpruned.scores()

    def test_mixed_search(self, example_indexes, example_query):
        pruned = mixed_search(example_indexes, example_query, k=5, prune=True)
        unpruned = mixed_search(
            example_indexes, example_query, k=5, prune=False
        )
        assert pruned.kinds() == unpruned.kinds()
        assert [a.raw_score for a in pruned.answers] == [
            a.raw_score for a in unpruned.answers
        ]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_graph_and_query(), st.integers(min_value=1, max_value=3))
def test_differential_on_random_graphs(graph_and_query, d):
    """Pruned == unpruned on arbitrary cyclic typed digraphs."""
    graph, query = graph_and_query
    indexes = build_indexes(graph, d=d)
    for name in sorted(SEARCHES):
        for k in (1, 2, 15):
            run_search_pair(indexes, query, name, k=k)
    pruned = individual_topk(indexes, query, k=5, prune=True)
    unpruned = individual_topk(indexes, query, k=5, prune=False)
    assert pruned.scores() == unpruned.scores()


# ------------------------------------------------------------- admissibility


class TestAdmissibility:
    """The bounds must dominate every exact value they claim to cover."""

    def _bounds(self, indexes, query, scoring=PAPER_DEFAULT):
        context = EnumerationContext(indexes, query)
        return context, context.query_bounds(scoring)

    def test_pattern_bounds_dominate_exact_scores(self, wiki_indexes):
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=2, max_keywords=3, seed=17),
        )
        checked = 0
        for query in queries:
            context, bounds = self._bounds(wiki_indexes, query)
            enumeration = linear_enum(
                wiki_indexes, query, keep_subtrees=False, context=context
            )
            for key, aggregate in enumeration.aggregates.items():
                exact = aggregate.value()
                assert bounds.full_pattern_upper(key) >= exact
                assert bounds.full_pattern_upper(key, max_roots=4) >= exact
                for i, pid in enumerate(key):
                    assert bounds.pid_upper(i, pid) >= exact
                checked += 1
        assert checked > 0

    def test_root_terms_dominate_subtree_scores(self, example_indexes):
        context, bounds = self._bounds(example_indexes, "software company")
        result = individual_topk(
            example_indexes, "software company", k=1000, prune=False
        )
        assert result.ranked
        for score, _key, combo in result.ranked:
            root = combo.entries()[0].nodes[0]
            term = bounds.root_term(root)
            assert term is not None
            count, combo_upper = term
            assert count >= 1
            assert combo_upper >= score

    def test_prefix_upper_dominates_completions(self, example_indexes):
        query = "software company"
        context, bounds = self._bounds(example_indexes, query)
        enumeration = linear_enum(
            example_indexes, query, keep_subtrees=False, context=context
        )
        roots = context.candidate_roots
        for key, aggregate in enumeration.aggregates.items():
            exact = aggregate.value()
            for depth in range(len(key) + 1):
                assert (
                    bounds.prefix_upper(key, depth, roots) >= exact
                ), (key, depth)
                assert (
                    bounds.pattern_upper_at_roots(key, depth, roots) >= exact
                ), (key, depth)

    def test_context_bound_api(self, example_indexes):
        context = EnumerationContext(example_indexes, "software company")
        enumeration = linear_enum(
            example_indexes, "software company", keep_subtrees=False,
            context=context,
        )
        best = max(a.value() for a in enumeration.aggregates.values())
        total = sum(
            context.root_upper_bound(root, PAPER_DEFAULT)
            for root in context.candidate_roots
        )
        assert total >= best
        assert (
            context.prefix_upper_bound(
                (), context.candidate_roots, PAPER_DEFAULT
            )
            >= best
        )

    def test_unsupported_scoring_returns_none(self, example_indexes):
        context = EnumerationContext(example_indexes, "software")
        scoring = ScoringFunction(extra_weights=(1.0,))
        assert context.query_bounds(scoring) is None
        assert context.root_upper_bound(0, scoring) == math.inf


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_graph_and_query(), st.integers(min_value=1, max_value=2))
def test_admissibility_on_random_graphs(graph_and_query, d):
    """Every pattern's bound dominates its exact score on random graphs."""
    graph, query = graph_and_query
    indexes = build_indexes(graph, d=d)
    context = EnumerationContext(indexes, query)
    bounds = context.query_bounds(PAPER_DEFAULT)
    assert bounds is not None
    enumeration = linear_enum(
        indexes, query, keep_subtrees=False, context=context
    )
    for key, aggregate in enumeration.aggregates.items():
        exact = aggregate.value()
        assert bounds.full_pattern_upper(key) >= exact
        for i, pid in enumerate(key):
            assert bounds.pid_upper(i, pid) >= exact


# ----------------------------------------------------- counters & trajectory


class TestCountersAndTrajectory:
    @pytest.fixture(scope="class")
    def heavy_query(self, wiki_indexes):
        """A wiki query heavy enough for the adaptive gate to engage."""
        from repro.datasets.queries import WorkloadConfig, generate_workload
        from repro.search.linear_enum import count_answers

        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=3, max_keywords=3, seed=17),
        )
        query = max(
            queries,
            key=lambda q: count_answers(wiki_indexes, q)[1],
        )
        patterns, subtrees = count_answers(wiki_indexes, query)
        assert subtrees >= 512, "fixture too small for pruning tests"
        return query

    def test_pattern_enum_prunes_and_records_trajectory(
        self, wiki_indexes, heavy_query
    ):
        result = pattern_enum_search(
            wiki_indexes, heavy_query, k=2, keep_subtrees=False
        )
        stats = result.stats
        assert stats.prefixes_skipped > 0
        assert stats.threshold_first is not None
        assert stats.threshold_last >= stats.threshold_first
        assert "prefixes-skipped" in stats.format()

    def test_linear_topk_prunes(self, wiki_indexes, heavy_query):
        result = linear_topk_search(
            wiki_indexes, heavy_query, k=2, keep_subtrees=False
        )
        stats = result.stats
        assert stats.prefixes_skipped > 0 or stats.roots_skipped > 0
        assert stats.threshold_first is not None

    def test_individual_prunes_pairs(self, wiki_indexes, heavy_query):
        result = individual_topk(wiki_indexes, heavy_query, k=2)
        stats = result.stats
        assert stats.roots_skipped + stats.pairs_skipped > 0

    def test_prune_false_leaves_counters_zero(
        self, example_indexes, example_query
    ):
        result = pattern_enum_search(
            example_indexes, example_query, k=5, prune=False
        )
        stats = result.stats
        assert stats.roots_skipped == 0
        assert stats.prefixes_skipped == 0
        assert stats.pairs_skipped == 0
        assert stats.threshold_first is None


# ------------------------------------------------- bound-column invalidation


class TestBoundColumnStaleness:
    """Satellite: ``append_path`` bumps the version and invalidates the
    aggregate/bound columns, like the query-acceleration columns."""

    def _tiny_indexes(self):
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        a = graph.add_node("T0", "apple")
        b = graph.add_node("T1", "berry")
        graph.add_edge(a, "rel", b)
        return build_indexes(graph, d=2)

    def test_append_path_bumps_version_and_invalidates(self):
        indexes = self._tiny_indexes()
        store = indexes.store
        before_columns = store.bound_columns()
        assert store.bound_columns() is before_columns  # cached
        version = store.version
        path_id = store.append_path((0, 1), (0,), False, 0, 0.125)
        assert store.version > version
        store.add_posting("zzz", path_id, 0.5)
        after_columns = store.bound_columns()
        assert after_columns is not before_columns
        root_bounds, _pattern_bounds = after_columns
        assert "zzz" in root_bounds

    def test_release_query_columns_drops_bound_cache(self):
        indexes = self._tiny_indexes()
        store = indexes.store
        first = store.bound_columns()
        store.release_query_columns()
        second = store.bound_columns()
        assert second is not first
        assert second == first  # same content, rebuilt

    def test_incremental_update_refreshes_bounds(self):
        """End to end: mutating through the incremental maintainer means
        a later pruned search sees the new posting."""
        from repro.index.incremental import add_entity, add_relationship
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        a = graph.add_node("T0", "apple")
        b = graph.add_node("T1", "berry")
        graph.add_edge(a, "rel", b)
        indexes = build_indexes(graph, d=2)
        before = pattern_enum_search(indexes, "cedar", k=5)
        assert before.num_answers == 0
        assert indexes.store.bound_columns() is indexes.store.bound_columns()
        c = add_entity(indexes, "T1", "cedar")
        add_relationship(indexes, a, "link", c)
        after = pattern_enum_search(indexes, "cedar", k=5)
        assert after.num_answers > 0


# ------------------------------------------------------------ TopKThreshold


class TestTopKThreshold:
    def test_admits_everything_until_full(self):
        from repro.core.topk import TopKQueue, TopKThreshold

        queue: TopKQueue = TopKQueue(2)
        gate = TopKThreshold(queue)
        assert not gate.is_active
        assert gate.admits(-1.0)
        assert gate.first_threshold is None
        queue.push(5.0, "a")
        assert gate.admits(0.0)  # still not full
        queue.push(3.0, "b")
        assert gate.is_active
        assert not gate.admits(2.9)
        assert gate.admits(3.0)  # ties admitted
        assert gate.admits(10.0)

    def test_trajectory_records_first_and_last(self):
        from repro.core.topk import TopKQueue, TopKThreshold
        from repro.search.result import SearchStats

        queue: TopKQueue = TopKQueue(1)
        gate = TopKThreshold(queue)
        queue.push(1.0, "a")
        gate.admits(0.5)
        queue.push(4.0, "b")
        gate.admits(0.5)
        stats = SearchStats(algorithm="x")
        gate.write_stats(stats)
        assert stats.threshold_first == 1.0
        assert stats.threshold_last == 4.0
        assert "kth=1->4" in stats.format()

    def test_write_stats_without_fill(self):
        from repro.core.topk import TopKQueue, TopKThreshold
        from repro.search.result import SearchStats

        gate = TopKThreshold(TopKQueue(3))
        stats = SearchStats(algorithm="x")
        gate.write_stats(stats)
        assert stats.threshold_first is None
        assert stats.threshold_last is None
