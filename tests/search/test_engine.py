"""TableAnswerEngine facade."""

import pytest

from repro.core.errors import SearchError
from repro.datasets.example import EXAMPLE_NORMALIZER, example_kb
from repro.kg.pagerank import uniform_scores
from repro.search.engine import TableAnswerEngine


@pytest.fixture(scope="module")
def engine():
    kb = example_kb()
    from repro.kg.builder import build_graph

    graph, _nodes = build_graph(kb)
    return TableAnswerEngine(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )


class TestConstruction:
    def test_from_knowledge_base(self):
        engine = TableAnswerEngine.from_knowledge_base(example_kb(), d=2)
        assert engine.d == 2
        assert engine.graph.num_nodes == 13

    def test_prebuilt_indexes_adopted(self, engine):
        again = TableAnswerEngine(engine.graph, indexes=engine.indexes)
        assert again.indexes is engine.indexes

    def test_prebuilt_indexes_graph_mismatch(self, engine):
        from repro.kg.graph import KnowledgeGraph

        with pytest.raises(SearchError):
            TableAnswerEngine(KnowledgeGraph(), indexes=engine.indexes)


class TestSearch:
    @pytest.mark.parametrize(
        "algorithm", ["pattern_enum", "petopk", "linear", "letopk", "baseline"]
    )
    def test_all_algorithms_agree_on_top1(self, engine, algorithm):
        result = engine.search(
            "database software company revenue", k=1, algorithm=algorithm
        )
        assert result.num_answers == 1
        assert result.answers[0].score == pytest.approx(3.5)

    def test_unknown_algorithm(self, engine):
        with pytest.raises(SearchError):
            engine.search("software", algorithm="quantum")

    def test_letopk_params_forwarded(self, engine):
        result = engine.search(
            "software company",
            k=3,
            algorithm="letopk",
            sampling_threshold=0,
            sampling_rate=0.9,
            seed=5,
        )
        assert result.stats.algorithm == "linear_topk"

    def test_scoring_override(self, engine):
        from repro.scoring.function import COUNT_TREES

        result = engine.search(
            "database software company revenue", k=1, scoring=COUNT_TREES
        )
        assert result.answers[0].score == 2.0  # two rows in P1

    def test_linear_full_alias(self, engine):
        result = engine.search("software company", k=3, algorithm="linear_full")
        assert result.stats.algorithm == "linear_enum"


class TestTables:
    def test_tables_rendered(self, engine):
        tables = engine.tables("database software company revenue", k=2)
        assert len(tables) == 2
        assert tables[0].headers() == ["Software", "Model", "Company", "Revenue"]

    def test_max_rows(self, engine):
        tables = engine.tables(
            "database software company revenue", k=1, max_rows=1
        )
        assert tables[0].num_rows == 1


class TestDiagnostics:
    def test_individual(self, engine):
        result = engine.individual("software company", k=5)
        assert result.scores() == sorted(result.scores(), reverse=True)

    def test_coverage(self, engine):
        metrics = engine.coverage("database software company revenue", k=5)
        assert 0.0 <= metrics.coverage <= 1.0

    def test_count_answers(self, engine):
        patterns, subtrees = engine.count_answers(
            "database software company revenue"
        )
        assert patterns >= 5
        assert subtrees >= patterns

    def test_explain(self, engine):
        report = engine.explain("database software")
        assert report["keywords"] == ("databas", "softwar")
        assert report["per_word"]["databas"]["postings"] > 0
