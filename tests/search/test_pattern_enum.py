"""PATTERNENUM (Algorithm 2): correctness and worst-case behaviour."""

import pytest

from repro.datasets.example import EXAMPLE_QUERY
from repro.datasets.worstcase import pattern_enum_adversarial_graph
from repro.index.builder import build_indexes
from repro.search.pattern_enum import pattern_enum_search


class TestOnExample:
    def test_top1_is_paper_p1(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=5)
        top = result.answers[0]
        assert top.score == pytest.approx(3.5)
        assert top.num_subtrees == 2
        rendered = top.pattern.format(graph)
        assert "(Software) (Genre) (Model)" in rendered
        assert "(Software) (Developer) (Company) (Revenue)" in rendered

    def test_k_limits_answers(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=2)
        assert result.num_answers == 2

    def test_scores_descending(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=100)
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)

    def test_keep_subtrees_false(self, example_indexes, example_query):
        result = pattern_enum_search(
            example_indexes, example_query, k=5, keep_subtrees=False
        )
        assert result.answers[0].subtrees == []
        assert result.answers[0].num_subtrees == 2
        assert result.answers[0].score == pytest.approx(3.5)

    def test_unknown_word_gives_empty(self, example_indexes):
        result = pattern_enum_search(example_indexes, "xylophone", k=5)
        assert result.num_answers == 0

    def test_single_keyword(self, example_indexes):
        result = pattern_enum_search(example_indexes, "microsoft", k=10)
        assert result.num_answers >= 1
        for answer in result.answers:
            assert answer.pattern.num_keywords == 1

    def test_heights_bounded_by_d(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=100)
        for answer in result.answers:
            assert answer.pattern.height <= example_indexes.d


class TestWorstCase:
    def test_all_combined_patterns_empty(self):
        """Section 4.1: PETopK checks p^2 combinations, all empty."""
        p = 6
        graph, query = pattern_enum_adversarial_graph(p)
        indexes = build_indexes(graph, d=2)
        result = pattern_enum_search(indexes, query, k=10)
        assert result.num_answers == 0
        assert result.stats.patterns_checked == p * p
        assert result.stats.empty_patterns == p * p

    def test_quadratic_growth(self):
        checked = []
        for p in (3, 6):
            graph, query = pattern_enum_adversarial_graph(p)
            indexes = build_indexes(graph, d=2)
            result = pattern_enum_search(indexes, query, k=10)
            checked.append(result.stats.patterns_checked)
        assert checked[1] == 4 * checked[0]


class TestStats:
    def test_counters_populated(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=5)
        stats = result.stats
        assert stats.algorithm == "pattern_enum"
        assert stats.elapsed_seconds > 0
        assert stats.patterns_checked >= stats.nonempty_patterns
        assert stats.subtrees_enumerated >= stats.nonempty_patterns
        assert stats.candidate_roots >= 1

    def test_format_smoke(self, example_indexes, example_query):
        result = pattern_enum_search(example_indexes, example_query, k=5)
        assert "pattern_enum" in result.stats.format()
