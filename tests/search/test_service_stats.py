"""ServiceStats thread-safety: counters must not drop updates under load.

Before the async HTTP front-end the only concurrent incrementers were the
``search_many`` thread pool; a bare ``+=`` on a dataclass int is a
read-modify-write that CPython can interleave between bytecodes, silently
losing counts.  :meth:`ServiceStats.bump` serializes on the stats lock;
these tests hammer it directly (deterministic arithmetic check) and
through the full service path (integration check).
"""

import threading

from repro.search.service import SearchService, ServiceStats


def _hammer(fn, num_threads: int) -> None:
    barrier = threading.Barrier(num_threads)

    def run():
        barrier.wait()
        fn()

    threads = [threading.Thread(target=run) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestBumpAtomicity:
    def test_concurrent_bumps_are_exact(self):
        stats = ServiceStats()
        threads, per_thread = 16, 2000

        def work():
            for _ in range(per_thread):
                stats.bump(searches=1, result_hits=2)

        _hammer(work, threads)
        assert stats.searches == threads * per_thread
        assert stats.result_hits == 2 * threads * per_thread

    def test_multi_counter_bump_is_one_critical_section(self):
        # hits + misses must always sum to the number of bumps even when a
        # racing reader computes the rate mid-hammer.
        stats = ServiceStats()
        threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                stats.bump(resolution_hits=1)
                stats.bump(resolution_misses=1)

        _hammer(work, threads)
        total = threads * per_thread
        assert stats.resolution_hits == total
        assert stats.resolution_misses == total
        assert stats.resolution_hit_rate() == 0.5

    def test_fresh_stats_instances_get_their_own_lock(self):
        # Benchmarks reset counters with ``type(service.stats)()``; each
        # instance must carry an independent lock, not a shared class one.
        first, second = ServiceStats(), ServiceStats()
        assert first.lock is not second.lock
        assert first == second  # lock excluded from equality


class TestServicePathUnderThreads:
    def test_warm_search_counters_exact_under_hammering(
        self, example_indexes
    ):
        service = SearchService(example_indexes)
        query = "database software company revenue"
        service.search(query, k=3)  # prime every tier
        threads, per_thread = 8, 50

        def work():
            for _ in range(per_thread):
                result = service.search(query, k=3)
                assert result.stats.from_result_cache

        _hammer(work, threads)
        total = threads * per_thread
        assert service.stats.searches == total + 1
        assert service.stats.result_hits == total
        assert service.stats.result_misses == 1
