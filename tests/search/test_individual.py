"""Individual top-k subtrees and Figure 13 coverage metrics (§5.3)."""

import pytest

from repro.datasets.worstcase import star_graph
from repro.index.builder import build_indexes
from repro.search.individual import coverage_metrics, individual_topk
from repro.search.linear_enum import linear_enum
from repro.search.expand import combo_score
from repro.search.pattern_enum import pattern_enum_search
from repro.scoring.function import PAPER_DEFAULT


class TestIndividualTopK:
    def test_scores_descending(self, example_indexes, example_query):
        result = individual_topk(example_indexes, example_query, k=20)
        scores = result.scores()
        assert scores == sorted(scores, reverse=True)

    def test_matches_full_enumeration(self, example_indexes, example_query):
        """Top-k individual == k best subtree scores from LINEARENUM."""
        result = individual_topk(example_indexes, example_query, k=5)
        enumeration = linear_enum(example_indexes, example_query)
        all_scores = sorted(
            (
                combo_score(PAPER_DEFAULT, combo)
                for combos in enumeration.trees_by_pattern.values()
                for combo in combos
            ),
            reverse=True,
        )
        assert result.scores() == pytest.approx(all_scores[:5])

    def test_combo_keys_match_patterns(self, example_indexes, example_query):
        result = individual_topk(example_indexes, example_query, k=5)
        for _score, key, combo in result.ranked:
            assert len(key) == len(result.query)
            assert len(combo) == len(result.query)

    def test_k_larger_than_population(self, example_indexes):
        result = individual_topk(example_indexes, "springer", k=1000)
        assert 0 < len(result.ranked) < 1000

    def test_format_renders_tables(self, example_indexes, example_query):
        result = individual_topk(example_indexes, example_query, k=3)
        text = result.format(example_indexes)
        assert "Top-1" in text


class TestCoverage:
    def test_star_full_coverage(self):
        """One pattern holding every subtree: coverage 1, no new patterns."""
        graph, query = star_graph(8)
        indexes = build_indexes(graph, d=2)
        individual = individual_topk(indexes, query, k=8)
        patterns = pattern_enum_search(indexes, query, k=8)
        metrics = coverage_metrics(individual, patterns)
        assert metrics.coverage == 1.0
        assert metrics.new_pattern_fraction == 0.0

    def test_metrics_in_range(self, wiki_indexes):
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes, WorkloadConfig(queries_per_size=2, max_keywords=3)
        )
        for query in queries[:6]:
            individual = individual_topk(wiki_indexes, query, k=10)
            patterns = pattern_enum_search(wiki_indexes, query, k=10)
            metrics = coverage_metrics(individual, patterns)
            assert 0.0 <= metrics.coverage <= 1.0
            assert 0.0 <= metrics.new_pattern_fraction <= 1.0

    def test_empty_results(self, example_indexes):
        individual = individual_topk(example_indexes, "zzz", k=10)
        patterns = pattern_enum_search(example_indexes, "zzz", k=10)
        metrics = coverage_metrics(individual, patterns)
        assert metrics.coverage == 0.0
        assert metrics.new_pattern_fraction == 0.0

    def test_singular_pattern_lost_from_pattern_topk(self):
        """Paper's motivation: a strong individual subtree with a singular
        pattern can vanish from the pattern top-k when k is small."""
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        # Pattern A: hub with many same-pattern subtrees — each subtree is
        # weak (size 3, leaf sim 1/4) but the pattern's *sum* is large.
        hub = graph.add_node("Hub", "alpha")
        for i in range(6):
            leaf = graph.add_node("Leaf", f"beta common filler word{i}")
            graph.add_edge(hub, "Link", leaf)
        # Pattern B: singular but individually strong (size 2, sim 1/2+1/2).
        lone = graph.add_node("Lone", "alpha beta")
        indexes = build_indexes(graph, d=2)
        patterns = pattern_enum_search(indexes, "alpha beta", k=1)
        individual = individual_topk(indexes, "alpha beta", k=1)
        # Sanity: the single best subtree is the Lone node...
        assert individual.ranked[0][2][0].nodes == (lone,)
        # ...but the top-1 pattern is the 6-row hub pattern, so the best
        # individual answer is invisible in the pattern top-1.
        assert patterns.answers[0].num_subtrees == 6
        metrics = coverage_metrics(individual, patterns)
        assert metrics.coverage == 0.0
        assert metrics.new_pattern_fraction == 1.0
