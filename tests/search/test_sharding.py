"""Sharded scatter–gather serving: partition invariants, bit-identity,
bound-driven shard skipping, and worker-pool robustness.

The load-bearing contract is differential: for every shardable algorithm
and every shard count, :class:`ShardedSearchService` must return answers
**bit-identical** to the plain single-store service — scores, pattern
keys, subtree rows, ordering, everything (see ``docs/sharding.md``).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import PathIndexError, SearchError
from repro.datasets.wiki import WikiConfig, generate_wiki_graph
from repro.index.builder import ResolvedQuery, build_indexes
from repro.index.serialize import (
    load_indexes,
    load_sharded_indexes,
    save_indexes,
    save_sharded_indexes,
)
from repro.index.shards import partition_indexes, shard_of_type
from repro.search.context import EnumerationContext
from repro.search.service import SearchService
from repro.search.sharding import (
    SHARDABLE_ALGORITHMS,
    ShardedSearchService,
    execute_shard_plan,
    plan_shardable,
)

ALGORITHMS = ("pattern_enum", "linear_topk", "linear_full", "baseline")
SHARD_COUNTS = (1, 2, 4, 7)


def fingerprint(result):
    """Everything observable about the answers, subtree rows included."""
    return [
        (
            answer.score,
            answer.pattern_key,
            answer.num_subtrees,
            [tuple(combo) for combo in answer.subtrees],
            answer.estimated_score,
        )
        for answer in result.answers
    ]


@pytest.fixture(scope="module")
def plain_service(wiki_indexes):
    return SearchService(wiki_indexes)


@pytest.fixture(scope="module")
def wiki_queries(wiki_indexes):
    """Queries with real candidate intersections, plus edge cases."""
    vocab = sorted(wiki_indexes.store.words())
    queries = []
    for pair in itertools.combinations(vocab[:25], 2):
        context = EnumerationContext(wiki_indexes, ResolvedQuery(pair))
        if len(context.candidate_roots) >= 5:
            queries.append(" ".join(pair))
        if len(queries) >= 4:
            break
    assert len(queries) >= 2, "fixture graph lost its vocabulary overlap"
    queries.append(vocab[0])          # single keyword
    queries.append("xyzzy unknown")   # resolves to nothing -> empty answer
    return queries


@pytest.fixture(scope="module")
def sharded_services(wiki_indexes):
    """One pool per shard count, shared by the differential tests."""
    services = {
        num_shards: ShardedSearchService(wiki_indexes, num_shards=num_shards)
        for num_shards in SHARD_COUNTS
    }
    yield services
    for service in services.values():
        service.close()


@pytest.fixture()
def small_bundle():
    """A private (mutation-safe) bundle for lifecycle tests."""
    graph = generate_wiki_graph(
        WikiConfig(
            num_entities=120,
            num_types=8,
            num_attrs=12,
            vocabulary_size=60,
            seed=5,
        )
    )
    return build_indexes(graph, d=3)


class TestPartition:
    def test_shard_of_type_is_stable_and_in_range(self):
        for num_shards in (1, 2, 4, 7, 16):
            for type_id in range(64):
                shard = shard_of_type(type_id, num_shards)
                assert 0 <= shard < num_shards
                assert shard == shard_of_type(type_id, num_shards)

    def test_shard_of_type_spreads(self):
        # Avalanching: a handful of consecutive type ids must not all
        # collapse onto one shard.
        assert len({shard_of_type(t, 4) for t in range(12)}) > 1

    def test_partition_covers_store_exactly(self, wiki_indexes):
        sharded = partition_indexes(wiki_indexes, 4)
        store = wiki_indexes.store
        assert sum(s.store.num_paths for s in sharded.shards) == store.num_paths
        assert sum(s.num_entries for s in sharded.shards) == wiki_indexes.num_entries
        for word in store.words():
            total = sum(
                shard.store.num_postings(word) for shard in sharded.shards
            )
            assert total == store.num_postings(word)

    def test_partition_keeps_patterns_whole(self, wiki_indexes):
        # Pattern containment: every path in shard s has a root whose
        # type hashes to s — so no pattern's root set spans shards.
        sharded = partition_indexes(wiki_indexes, 4)
        graph = wiki_indexes.graph
        for shard_id, shard in enumerate(sharded.shards):
            for path_id in range(shard.store.num_paths):
                root = shard.store.path_root(path_id)
                assert shard_of_type(graph.node_type(root), 4) == shard_id
                assert sharded.shard_of_root(root) == shard_id

    def test_partition_rejects_bad_shard_count(self, wiki_indexes):
        with pytest.raises(PathIndexError, match="num_shards"):
            partition_indexes(wiki_indexes, 0)

    def test_partition_roots_preserves_order(self, wiki_indexes):
        sharded = partition_indexes(wiki_indexes, 4)
        roots = sorted(wiki_indexes.graph.nodes())[:50]
        parts = sharded.partition_roots(roots)
        assert sorted(sum(parts, [])) == roots
        for part in parts:
            assert part == sorted(part)


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_all_algorithms_match_unsharded(
        self, sharded_services, plain_service, wiki_queries, num_shards
    ):
        service = sharded_services[num_shards]
        for algorithm in ALGORITHMS:
            for query in wiki_queries:
                reference = plain_service.search(
                    query, k=5, algorithm=algorithm
                )
                sharded = service.search(query, k=5, algorithm=algorithm)
                assert fingerprint(sharded) == fingerprint(reference), (
                    num_shards,
                    algorithm,
                    query,
                )
                if algorithm in SHARDABLE_ALGORITHMS and not (
                    sharded.stats.from_result_cache
                ):
                    assert sharded.stats.shards_total == num_shards

    def test_no_subtrees_matches_too(
        self, sharded_services, plain_service, wiki_queries
    ):
        service = sharded_services[4]
        for query in wiki_queries[:3]:
            reference = plain_service.search(
                query, k=5, keep_subtrees=False
            )
            sharded = service.search(query, k=5, keep_subtrees=False)
            assert fingerprint(sharded) == fingerprint(reference)

    def test_search_many_through_shards(
        self, sharded_services, plain_service, wiki_queries
    ):
        service = sharded_services[2]
        reference = plain_service.search_many(wiki_queries, k=5)
        batched = service.search_many(wiki_queries, k=5, threads=2)
        for got, want in zip(batched, reference):
            assert fingerprint(got) == fingerprint(want)


class TestHypothesisDifferential:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_queries_match(
        self, data, sharded_services, plain_service, wiki_indexes
    ):
        vocab = sorted(wiki_indexes.store.words())
        words = data.draw(
            st.lists(
                st.sampled_from(vocab), min_size=1, max_size=3, unique=True
            )
        )
        algorithm = data.draw(st.sampled_from(sorted(SHARDABLE_ALGORITHMS)))
        k = data.draw(st.sampled_from([1, 3, 10]))
        num_shards = data.draw(st.sampled_from(SHARD_COUNTS))
        query = " ".join(words)
        reference = plain_service.search(
            query, k=k, algorithm=algorithm, keep_subtrees=False
        )
        sharded = sharded_services[num_shards].search(
            query, k=k, algorithm=algorithm, keep_subtrees=False
        )
        assert fingerprint(sharded) == fingerprint(reference)


class TestBoundSkipping:
    def test_small_k_skips_shards(
        self, sharded_services, plain_service, wiki_queries
    ):
        service = sharded_services[7]
        skipped = 0
        for query in wiki_queries:
            result = service.search(
                query, k=1, keep_subtrees=False, algorithm="pattern_enum"
            )
            reference = plain_service.search(
                query, k=1, keep_subtrees=False, algorithm="pattern_enum"
            )
            assert fingerprint(result) == fingerprint(reference)
            stats = result.stats
            if stats.from_result_cache:
                continue
            skipped += stats.shards_skipped
            assert stats.shards_total == 7
            assert (
                len(stats.shard_dispatch_order) + stats.shards_skipped == 7
            )
        assert skipped > 0, "k=1 over 7 shards never skipped a shard"

    def test_dispatch_order_is_best_bound_first(
        self, sharded_services, wiki_queries
    ):
        service = sharded_services[4]
        service._results.clear()
        result = service.search(wiki_queries[0], k=5)
        stats = result.stats
        order = stats.shard_dispatch_order
        snap = service.snapshot()
        plan = service.plan(wiki_queries[0], k=5)
        context = service._context_for(snap, plan)
        with service._scatter_lock:
            sharded, _ = service._ensure_pool(snap)
            uppers = service._shard_bounds(snap, plan, context, sharded)
        bounds = [uppers[shard_id] for shard_id in order]
        assert bounds == sorted(bounds, reverse=True)

    def test_unknown_words_skip_everything(self, sharded_services):
        service = sharded_services[4]
        result = service.search("xyzzy unknown", k=5)
        if not result.stats.from_result_cache:
            assert result.stats.shards_skipped == 4
            assert result.stats.shard_dispatch_order == ()
        assert result.answers == []


class TestInlineRouting:
    def test_baseline_routes_inline(self, sharded_services, wiki_queries):
        result = sharded_services[2].search(
            wiki_queries[0], k=3, algorithm="baseline"
        )
        assert result.stats.shards_total == 0

    def test_sampled_letopk_routes_inline(
        self, sharded_services, plain_service, wiki_queries
    ):
        # Sampled LETopK draws its keep/drop stream over the global
        # candidate ordering; per-shard streams would diverge, so the
        # coordinator executes it inline — still bit-identical.
        params = dict(
            algorithm="linear_topk",
            sampling_threshold=0.0,
            sampling_rate=0.5,
            seed=11,
        )
        result = sharded_services[2].search(wiki_queries[0], k=3, **params)
        reference = plain_service.search(wiki_queries[0], k=3, **params)
        assert result.stats.shards_total == 0
        assert fingerprint(result) == fingerprint(reference)

    def test_plan_shardable_predicate(self, plain_service, wiki_queries):
        shardable = plain_service.plan(wiki_queries[0], algorithm="letopk")
        assert plan_shardable(shardable)
        sampled = plain_service.plan(
            wiki_queries[0],
            algorithm="letopk",
            sampling_threshold=0.0,
            sampling_rate=0.5,
        )
        assert not plan_shardable(sampled)
        baseline = plain_service.plan(wiki_queries[0], algorithm="baseline")
        assert not plan_shardable(baseline)


class TestWorkerRobustness:
    def test_killed_worker_fails_over_and_respawns(
        self, small_bundle, monkeypatch
    ):
        plain = SearchService(small_bundle)
        vocab = sorted(small_bundle.store.words())
        query = " ".join(vocab[:2])
        with ShardedSearchService(small_bundle, num_shards=4) as service:
            first = service.search(query, k=5)
            assert first.stats.shard_dispatch_order, "query dispatched nothing"
            victim = first.stats.shard_dispatch_order[0]
            service._pool.kill_worker(victim)
            service._results.clear()  # force re-execution, not a cache hit
            recovered = service.search(query, k=5)
            assert fingerprint(recovered) == fingerprint(first)
            assert recovered.stats.shard_failovers >= 1
            # The pool respawned the worker: the next query runs fully
            # remote again, no failover.
            service._results.clear()
            healthy = service.search(query, k=5)
            assert healthy.stats.shard_failovers == 0
            assert fingerprint(healthy) == fingerprint(
                plain.search(query, k=5)
            )

    def test_inline_execution_matches_worker(self, small_bundle):
        # The failover path runs the same function the workers run.
        service = SearchService(small_bundle)
        vocab = sorted(small_bundle.store.words())
        plan = service.plan(" ".join(vocab[:2]), k=5)
        sharded = partition_indexes(small_bundle, 2)
        portable = [
            execute_shard_plan(shard, plan)[0] for shard in sharded.shards
        ]
        merged_keys = sorted(
            key for answers in portable for _, key, _, _, _ in answers
        )
        reference = service.search(plan=plan)
        assert set(a.pattern_key for a in reference.answers) <= set(
            merged_keys
        )

    def test_processes_batch_is_rejected(self, small_bundle):
        with ShardedSearchService(small_bundle, num_shards=2) as service:
            with pytest.raises(SearchError, match="parallel path"):
                service.search_many(
                    ["anything"], k=3, processes=2, keep_subtrees=False
                )


class TestShardedPersistence:
    def test_round_trip(self, small_bundle, tmp_path):
        sharded = partition_indexes(small_bundle, 4)
        path = tmp_path / "kb.sharded.idx"
        save_sharded_indexes(sharded, path)
        loaded = load_sharded_indexes(path)
        assert loaded.num_shards == 4
        assert [s.store.num_paths for s in loaded.shards] == [
            s.store.num_paths for s in sharded.shards
        ]
        assert loaded.base.num_entries == small_bundle.num_entries

    def test_plain_load_returns_base(self, small_bundle, tmp_path):
        path = tmp_path / "kb.sharded.idx"
        save_sharded_indexes(partition_indexes(small_bundle, 2), path)
        base = load_indexes(path)
        assert base.num_entries == small_bundle.num_entries
        assert base.store.num_paths == small_bundle.store.num_paths

    def test_load_sharded_rejects_plain_file(self, small_bundle, tmp_path):
        path = tmp_path / "kb.idx"
        save_indexes(small_bundle, path)
        with pytest.raises(PathIndexError, match="not a sharded"):
            load_sharded_indexes(path)

    def test_service_from_sharded_file(self, small_bundle, tmp_path):
        path = tmp_path / "kb.sharded.idx"
        save_sharded_indexes(partition_indexes(small_bundle, 3), path)
        vocab = sorted(small_bundle.store.words())
        query = " ".join(vocab[:2])
        reference = SearchService(small_bundle).search(query, k=5)
        with ShardedSearchService.from_file(path) as service:
            assert service.num_shards == 3  # stored partition honored
            assert fingerprint(service.search(query, k=5)) == fingerprint(
                reference
            )
        # A different K repartitions instead of using the stored shards.
        with ShardedSearchService.from_file(path, num_shards=2) as service:
            assert service.num_shards == 2
            assert fingerprint(service.search(query, k=5)) == fingerprint(
                reference
            )


class TestPoolLifecycle:
    def test_pool_rebuilds_after_store_mutation(self, small_bundle):
        vocab = sorted(small_bundle.store.words())
        query = " ".join(vocab[:2])
        with ShardedSearchService(small_bundle, num_shards=2) as service:
            before = service.search(query, k=5)
            first_pool = service._pool
            # Any store mutation bumps the version; the next shardable
            # query must re-partition and re-fork against the new state.
            word, path_id, sim = "zzz-new-word", 0, 0.5
            small_bundle.store.add_posting(word, path_id, sim)
            after = service.search(query, k=5)
            assert service._pool is not first_pool
            assert fingerprint(after) == fingerprint(
                SearchService(small_bundle).search(query, k=5)
            )
            assert not before.stats.from_result_cache
            assert not after.stats.from_result_cache

    def test_close_is_idempotent_and_service_survives(self, small_bundle):
        vocab = sorted(small_bundle.store.words())
        query = vocab[0]
        service = ShardedSearchService(small_bundle, num_shards=2)
        first = service.search(query, k=3)
        service.close()
        service.close()
        # Serving continues: a fresh pool is built on demand.
        service._results.clear()
        again = service.search(query, k=3)
        assert fingerprint(again) == fingerprint(first)
        service.close()

    def test_rejects_mismatched_preload(self, small_bundle):
        sharded = partition_indexes(small_bundle, 2)
        with pytest.raises(SearchError, match="shards"):
            ShardedSearchService(
                small_bundle, num_shards=3, sharded=sharded
            )
