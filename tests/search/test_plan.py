"""The plan half of the plan/execute split: canonicalization and dispatch."""

import math

import pytest

from repro.core.errors import SearchError
from repro.index.builder import ResolvedQuery
from repro.scoring.function import PAPER_DEFAULT, ScoringFunction
from repro.search.engine import TableAnswerEngine
from repro.search.plan import (
    ALGORITHM_ALIASES,
    canonical_algorithm,
    execute_plan,
    plan_search,
)

QUERY = "database software company revenue"


@pytest.fixture(scope="module")
def engine(example_bundle):
    graph, _nodes, indexes = example_bundle
    return TableAnswerEngine(graph, indexes=indexes)


class TestCanonicalization:
    def test_aliases_collapse(self):
        assert canonical_algorithm("petopk") == "pattern_enum"
        assert canonical_algorithm("PETopK") == "pattern_enum"
        assert canonical_algorithm("letopk") == "linear_topk"
        assert canonical_algorithm("linear") == "linear_topk"
        assert canonical_algorithm("baseline") == "baseline"

    def test_unknown_algorithm_fails_at_plan_time(self, engine):
        with pytest.raises(SearchError, match="unknown algorithm"):
            plan_search(engine.indexes, QUERY, algorithm="quantum")

    def test_unknown_parameter_fails_at_plan_time(self, engine):
        with pytest.raises(SearchError, match="does not accept"):
            plan_search(engine.indexes, QUERY, samplig_rate=0.5)

    def test_default_params_are_explicit(self, engine):
        plan = plan_search(engine.indexes, QUERY)
        params = dict(plan.params)
        assert params == {"keep_subtrees": True, "prune": True}

    def test_linear_alias_forces_exactness(self, engine):
        plan = plan_search(engine.indexes, QUERY, algorithm="linear")
        params = dict(plan.params)
        assert plan.algorithm == "linear_topk"
        assert params["sampling_threshold"] == math.inf
        assert params["sampling_rate"] == 1.0

    def test_words_are_resolved(self, engine):
        plan = plan_search(engine.indexes, QUERY)
        assert plan.words == ("databas", "softwar", "compani", "revenu")
        assert plan.query_text == QUERY
        assert plan.d == engine.d
        assert plan.store_version == engine.indexes.store.version


class TestCacheKey:
    def test_spelling_invariance(self, engine):
        a = plan_search(engine.indexes, "Software Company!")
        b = plan_search(engine.indexes, "software   company")
        assert a.cache_key == b.cache_key
        assert hash(a.cache_key) == hash(b.cache_key)

    def test_defaults_vs_explicit(self, engine):
        a = plan_search(engine.indexes, QUERY)
        b = plan_search(engine.indexes, QUERY, prune=True,
                        keep_subtrees=True)
        assert a.cache_key == b.cache_key

    def test_alias_invariance(self, engine):
        a = plan_search(engine.indexes, QUERY, algorithm="letopk")
        b = plan_search(engine.indexes, QUERY, algorithm="linear_topk")
        assert a.cache_key == b.cache_key

    def test_k_and_params_distinguish(self, engine):
        base = plan_search(engine.indexes, QUERY, k=5)
        assert base.cache_key != plan_search(
            engine.indexes, QUERY, k=6
        ).cache_key
        assert base.cache_key != plan_search(
            engine.indexes, QUERY, k=5, prune=False
        ).cache_key
        assert base.cache_key != plan_search(
            engine.indexes, QUERY, k=5, algorithm="baseline"
        ).cache_key

    def test_scoring_distinguishes(self, engine):
        a = plan_search(engine.indexes, QUERY)
        b = plan_search(
            engine.indexes, QUERY,
            scoring=ScoringFunction(z1=-1.0, z2=1.0, z3=2.0),
        )
        assert a.scoring == PAPER_DEFAULT
        assert a.cache_key != b.cache_key

    def test_cacheable(self, engine):
        assert plan_search(engine.indexes, QUERY).cacheable
        assert plan_search(
            engine.indexes, QUERY, algorithm="letopk", seed=None
        ).cacheable  # sampling cannot trigger at the default threshold
        assert not plan_search(
            engine.indexes, QUERY, algorithm="letopk",
            seed=None, sampling_threshold=1, sampling_rate=0.5,
        ).cacheable
        assert plan_search(
            engine.indexes, QUERY, algorithm="letopk",
            seed=7, sampling_threshold=1, sampling_rate=0.5,
        ).cacheable


class TestExecution:
    @pytest.mark.parametrize("algorithm", sorted(set(ALGORITHM_ALIASES)))
    def test_execute_matches_direct_search(self, engine, algorithm):
        plan = plan_search(
            engine.indexes, QUERY, k=3, algorithm=algorithm,
            scoring=engine.scoring,
        )
        via_plan = execute_plan(engine.indexes, plan)
        direct = engine.search(QUERY, k=3, algorithm=algorithm)
        assert via_plan.scores() == direct.scores()
        assert via_plan.pattern_keys() == direct.pattern_keys()

    def test_engine_accepts_prebuilt_plan(self, engine):
        plan = engine.plan(QUERY, k=2)
        result = engine.search(plan=plan)
        assert result.scores() == engine.search(QUERY, k=2).scores()

    def test_engine_rejects_params_with_plan(self, engine):
        plan = engine.plan(QUERY, k=2)
        with pytest.raises(SearchError, match="plan time"):
            engine.search(plan=plan, prune=False)

    @pytest.mark.parametrize(
        "override",
        [{"k": 10}, {"algorithm": "baseline"}, {"scoring": PAPER_DEFAULT}],
    )
    def test_engine_rejects_named_overrides_with_plan(
        self, engine, override
    ):
        # Silently preferring the plan's k/algorithm/scoring over an
        # explicitly passed value would be a wrong-answer-count footgun.
        plan = engine.plan(QUERY, k=2)
        with pytest.raises(SearchError, match="plan time"):
            engine.search(plan=plan, **override)

    def test_service_rejects_named_overrides_with_plan(self, engine):
        from repro.search.service import SearchService

        service = SearchService(engine.indexes)
        plan = service.plan(QUERY, k=2)
        with pytest.raises(SearchError, match="plan time"):
            service.search(plan=plan, k=10)

    def test_engine_requires_query_or_plan(self, engine):
        with pytest.raises(SearchError, match="query"):
            engine.search()

    def test_stale_plan_rejected(self, example_bundle):
        from repro.datasets.example import example_graph_with_nodes
        from repro.index.builder import build_indexes
        from repro.index.incremental import add_entity
        from repro.kg.pagerank import uniform_scores
        from repro.datasets.example import EXAMPLE_NORMALIZER

        graph, _nodes = example_graph_with_nodes()
        indexes = build_indexes(
            graph, d=2, normalizer=EXAMPLE_NORMALIZER,
            pagerank_scores=uniform_scores(graph),
        )
        plan = plan_search(indexes, QUERY)
        add_entity(indexes, "Company", "Mutation Corp")
        with pytest.raises(SearchError, match="replan"):
            execute_plan(indexes, plan)
        # The escape hatch for callers that know better.
        result = execute_plan(indexes, plan, allow_stale=True)
        assert result.num_answers >= 0

    def test_resolved_query_passthrough(self, engine):
        plan = plan_search(engine.indexes, QUERY)
        rq = plan.resolved_query()
        assert isinstance(rq, ResolvedQuery)
        assert engine.indexes.resolve_query(rq) == plan.words

    def test_describe_mentions_everything(self, engine):
        plan = plan_search(engine.indexes, QUERY, k=7)
        text = plan.describe(engine.indexes)
        assert "algorithm=pattern_enum" in text
        assert "k=7" in text
        assert "databas" in text
        assert "postings=" in text
        assert f"store version {plan.store_version}" in text
