"""SearchResult / PatternAnswer / SearchStats plumbing."""

import pytest

from repro.search.expand import count_root_subtrees
from repro.search.pattern_enum import pattern_enum_search
from repro.search.result import (
    SearchStats,
    pattern_from_key,
    pattern_from_labels,
)


class TestSearchStats:
    def test_format_includes_nonzero_counters(self):
        stats = SearchStats(algorithm="x", elapsed_seconds=0.5)
        stats.candidate_roots = 3
        text = stats.format()
        assert "x: 500.0 ms" in text
        assert "roots=3" in text
        assert "empty=" not in text  # zero counters omitted


class TestPatternAnswer:
    def test_materialize_and_table(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=1)
        answer = result.answers[0]
        trees = answer.materialize()
        assert len(trees) == answer.num_subtrees
        for tree in trees:
            assert tree.pattern(graph) == answer.pattern
        table = answer.to_table(graph, max_rows=1)
        assert table.num_rows == 1

    def test_tables_helper(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=3)
        tables = result.tables(graph)
        assert len(tables) == 3
        assert tables[0].score >= tables[1].score

    def test_format_digest(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=2)
        digest = result.format(graph, max_tables=1)
        assert "answers=2" in digest
        assert "#1" in digest
        assert "#2" not in digest


class TestPatternReconstruction:
    def test_from_key_matches_interner(self, example_bundle, example_query):
        _graph, _nodes, indexes = example_bundle
        result = pattern_enum_search(indexes, example_query, k=1)
        answer = result.answers[0]
        assert pattern_from_key(indexes, answer.pattern_key) == answer.pattern

    def test_from_labels(self):
        key = (((0,), False), ((0, 1, 2), False))
        pattern = pattern_from_labels(key)
        assert pattern.num_keywords == 2
        assert pattern.root_type == 0
        assert pattern.paths[1].labels == (0, 1, 2)


class TestCountRootSubtrees:
    def test_product_of_counts(self):
        from repro.index.entry import PathEntry

        entry = PathEntry((0,), (), False, 1.0, 1.0)
        maps = [
            {1: [entry, entry]},
            {2: [entry], 3: [entry, entry]},
        ]
        assert count_root_subtrees(maps) == 2 * 3

    def test_zero_when_word_missing(self):
        from repro.index.entry import PathEntry

        entry = PathEntry((0,), (), False, 1.0, 1.0)
        assert count_root_subtrees([{1: [entry]}, {}]) == 0
