"""Universal (mixed) ranking of patterns and individual subtrees."""

import pytest

from repro.core.errors import SearchError
from repro.datasets.case_study import CASE_STUDY_D, xbox_case_study_graph
from repro.datasets.worstcase import star_graph
from repro.index.builder import build_indexes
from repro.search.mixed import mixed_search


@pytest.fixture(scope="module")
def case_indexes():
    graph, query = xbox_case_study_graph()
    return build_indexes(graph, d=CASE_STUDY_D), query


class TestMixedRanking:
    def test_case_study_mixes_both_kinds(self, case_indexes):
        indexes, query = case_indexes
        result = mixed_search(indexes, query, k=5)
        kinds = set(result.kinds())
        assert kinds == {"pattern", "subtree"}
        assert result.num_patterns_ranked >= 1
        assert result.num_subtrees_ranked >= 1

    def test_normalized_scores_descending_within_bound(self, case_indexes):
        indexes, query = case_indexes
        result = mixed_search(indexes, query, k=6)
        scores = [answer.normalized_score for answer in result.answers]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_top_normalized_is_one(self, case_indexes):
        indexes, query = case_indexes
        result = mixed_search(indexes, query, k=3)
        assert result.answers[0].normalized_score == pytest.approx(1.0)

    def test_subsumption(self):
        """On a star, every individual subtree is a row of the single
        pattern, so the mixed ranking contains the pattern only."""
        graph, query = star_graph(6)
        indexes = build_indexes(graph, d=2)
        result = mixed_search(indexes, query, k=10)
        assert result.kinds().count("pattern") == 1
        assert result.num_subtrees_subsumed > 0
        # No subtree that is already a table row appears separately.
        pattern_rows = set(result.answers[0].pattern_answer.subtrees)
        for answer in result.answers:
            if answer.kind == "subtree":
                assert answer.subtree_combo not in pattern_rows

    def test_pattern_weight_zero_is_individual_ranking(self, case_indexes):
        indexes, query = case_indexes
        result = mixed_search(indexes, query, k=4, pattern_weight=0.0)
        # With zero pattern weight, subtrees saturate the prefix of the
        # ranking (patterns all have normalized score 0).
        first_pattern_rank = next(
            (i for i, kind in enumerate(result.kinds()) if kind == "pattern"),
            len(result.answers),
        )
        first_subtree_rank = next(
            (i for i, kind in enumerate(result.kinds()) if kind == "subtree"),
            len(result.answers),
        )
        assert first_subtree_rank < first_pattern_rank

    def test_k_bounds_answers(self, case_indexes):
        indexes, query = case_indexes
        result = mixed_search(indexes, query, k=2)
        assert len(result.answers) == 2

    def test_bad_weight_rejected(self, case_indexes):
        indexes, query = case_indexes
        with pytest.raises(SearchError):
            mixed_search(indexes, query, pattern_weight=1.5)

    def test_every_answer_renders_as_table(self, case_indexes):
        indexes, query = case_indexes
        result = mixed_search(indexes, query, k=5)
        for answer in result.answers:
            table = answer.pattern_answer.to_table(indexes.graph)
            assert table.num_rows == answer.num_rows or answer.kind == "pattern"
