"""LINEARENUM (Algorithm 3): full enumeration and its guarantees."""

import pytest

from repro.datasets.worstcase import (
    diamond_graph,
    pattern_enum_adversarial_graph,
    star_graph,
)
from repro.index.builder import build_indexes
from repro.search.linear_enum import count_answers, linear_enum, linear_enum_search
from repro.search.pattern_enum import pattern_enum_search


class TestEnumeration:
    def test_every_tried_pattern_nonempty(self, example_indexes, example_query):
        """Theorem 3's key property: no wasted empty patterns."""
        enumeration = linear_enum(example_indexes, example_query)
        assert enumeration.stats.empty_patterns == 0
        for key, aggregate in enumeration.aggregates.items():
            assert aggregate.count >= 1
            assert len(enumeration.trees_by_pattern[key]) == aggregate.count

    def test_counts_match_pattern_enum(self, example_indexes, example_query):
        enumeration = linear_enum(example_indexes, example_query)
        full = pattern_enum_search(example_indexes, example_query, k=10_000)
        assert enumeration.num_patterns == full.num_answers
        assert enumeration.num_subtrees == sum(
            answer.num_subtrees for answer in full.answers
        )

    def test_adversarial_graph_zero_candidates(self):
        """LINEARENUM sees instantly there are no candidate roots."""
        graph, query = pattern_enum_adversarial_graph(6)
        indexes = build_indexes(graph, d=2)
        enumeration = linear_enum(indexes, query)
        assert enumeration.stats.candidate_roots == 0
        assert enumeration.num_patterns == 0
        assert enumeration.stats.patterns_checked == 0

    def test_star_graph_counts(self):
        graph, query = star_graph(fanout=7)
        indexes = build_indexes(graph, d=2)
        enumeration = linear_enum(indexes, query)
        assert enumeration.num_patterns == 1
        assert enumeration.num_subtrees == 7

    def test_diamond_tree_check(self):
        """Non-tree path unions are rejected, valid ones kept."""
        graph, query = diamond_graph()
        indexes = build_indexes(graph, d=3)
        enumeration = linear_enum(indexes, query)
        assert enumeration.stats.tree_check_rejections > 0
        assert enumeration.num_subtrees >= 1
        # Every kept subtree really is a tree.
        from repro.index.entry import entries_form_tree

        for combos in enumeration.trees_by_pattern.values():
            for combo in combos:
                assert entries_form_tree(combo)

    def test_keep_subtrees_false_counts_only(self, example_indexes, example_query):
        enumeration = linear_enum(
            example_indexes, example_query, keep_subtrees=False
        )
        assert enumeration.num_patterns > 0
        assert all(not v for v in enumeration.trees_by_pattern.values())
        assert enumeration.num_subtrees > 0


class TestSearchWrapper:
    def test_matches_pattern_enum_topk(self, example_indexes, example_query):
        linear = linear_enum_search(example_indexes, example_query, k=5)
        pattern = pattern_enum_search(example_indexes, example_query, k=5)
        assert [round(s, 9) for s in linear.scores()] == [
            round(s, 9) for s in pattern.scores()
        ]
        assert linear.pattern_keys() == pattern.pattern_keys()

    def test_count_answers(self, example_indexes, example_query):
        patterns, subtrees = count_answers(example_indexes, example_query)
        enumeration = linear_enum(example_indexes, example_query)
        assert patterns == enumeration.num_patterns
        assert subtrees == enumeration.num_subtrees
