"""Enumeration-aggregation baseline (Section 2.3)."""

import pytest

from repro.core.errors import SearchError
from repro.datasets.worstcase import diamond_graph, star_graph
from repro.index.builder import build_indexes
from repro.search.baseline import baseline_search
from repro.search.pattern_enum import pattern_enum_search


class TestCorrectness:
    def test_matches_index_algorithms(self, example_indexes, example_query):
        """Reverse-walk enumeration agrees with the forward-built index."""
        baseline = baseline_search(example_indexes, example_query, k=100)
        pattern = pattern_enum_search(example_indexes, example_query, k=100)
        assert [round(s, 9) for s in baseline.scores()] == [
            round(s, 9) for s in pattern.scores()
        ]
        # Patterns agree structurally (baseline uses raw label keys).
        assert [a.pattern for a in baseline.answers] == [
            a.pattern for a in pattern.answers
        ]

    def test_subtree_counts_agree(self, example_indexes, example_query):
        baseline = baseline_search(example_indexes, example_query, k=100)
        pattern = pattern_enum_search(example_indexes, example_query, k=100)
        assert [a.num_subtrees for a in baseline.answers] == [
            a.num_subtrees for a in pattern.answers
        ]

    def test_star(self):
        graph, query = star_graph(9)
        indexes = build_indexes(graph, d=2)
        result = baseline_search(indexes, query, k=5)
        assert result.num_answers == 1
        assert result.answers[0].num_subtrees == 9

    def test_diamond_tree_check(self):
        graph, query = diamond_graph()
        indexes = build_indexes(graph, d=3)
        result = baseline_search(indexes, query, k=10)
        assert result.stats.tree_check_rejections > 0
        assert result.num_answers >= 1

    def test_edge_keyword_from_reverse_walk(self, example_indexes):
        """'revenue' only matches attribute types: exercises the reverse
        walk seeded from edges."""
        result = baseline_search(example_indexes, "microsoft revenue", k=10)
        assert result.num_answers >= 1
        top = result.answers[0]
        assert any(p.ends_at_edge for p in top.pattern.paths)


class TestParameters:
    def test_smaller_d_allowed(self, example_indexes, example_query):
        shallow = baseline_search(example_indexes, example_query, k=100, d=2)
        deep = baseline_search(example_indexes, example_query, k=100, d=3)
        assert shallow.num_answers <= deep.num_answers
        for answer in shallow.answers:
            assert answer.pattern.height <= 2

    def test_bad_d_rejected(self, example_indexes, example_query):
        with pytest.raises(SearchError):
            baseline_search(example_indexes, example_query, d=0)

    def test_keep_subtrees_false(self, example_indexes, example_query):
        result = baseline_search(
            example_indexes, example_query, k=5, keep_subtrees=False
        )
        assert result.answers[0].subtrees == []
        assert result.answers[0].num_subtrees > 0

    def test_unknown_word_empty(self, example_indexes):
        assert baseline_search(example_indexes, "qqq", k=5).num_answers == 0

    def test_d1_single_node_answers(self, example_indexes):
        result = baseline_search(example_indexes, "microsoft company", k=5, d=1)
        assert result.num_answers == 1
        assert result.answers[0].pattern.height == 1
