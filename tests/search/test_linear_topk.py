"""LINEARENUM-TOPK (Algorithm 4): type partitioning and sampling."""

import math

import pytest

from repro.core.errors import SearchError
from repro.datasets.worstcase import star_graph
from repro.index.builder import build_indexes
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search


class TestExactMode:
    def test_matches_pattern_enum(self, example_indexes, example_query):
        """Theorem 4 correctness: no sampling -> exact top-k."""
        linear = linear_topk_search(example_indexes, example_query, k=5)
        pattern = pattern_enum_search(example_indexes, example_query, k=5)
        assert [round(s, 9) for s in linear.scores()] == [
            round(s, 9) for s in pattern.scores()
        ]
        assert linear.pattern_keys() == pattern.pattern_keys()

    def test_subtrees_returned(self, example_indexes, example_query):
        result = linear_topk_search(example_indexes, example_query, k=1)
        assert result.answers[0].num_subtrees == 2
        assert len(result.answers[0].subtrees) == 2

    def test_no_sampling_flags(self, example_indexes, example_query):
        result = linear_topk_search(example_indexes, example_query, k=5)
        assert result.stats.sampled_types == 0
        assert result.stats.rescored_patterns == 0
        for answer in result.answers:
            assert answer.estimated_score is None

    def test_parameter_validation(self, example_indexes, example_query):
        with pytest.raises(SearchError):
            linear_topk_search(
                example_indexes, example_query, sampling_rate=0.0
            )
        with pytest.raises(SearchError):
            linear_topk_search(
                example_indexes, example_query, sampling_rate=1.2
            )
        with pytest.raises(SearchError):
            linear_topk_search(
                example_indexes, example_query, sampling_threshold=-1
            )


class TestSampling:
    @pytest.fixture(scope="class")
    def star_indexes(self):
        graph, query = star_graph(fanout=40)
        return build_indexes(graph, d=2), query

    def test_rate_one_with_zero_threshold_is_exact(self, star_indexes):
        indexes, query = star_indexes
        result = linear_topk_search(
            indexes, query, k=5, sampling_threshold=0, sampling_rate=1.0
        )
        assert result.num_answers == 1
        assert result.answers[0].num_subtrees == 40

    def test_sampling_reduces_expanded_roots(self, star_indexes):
        indexes, query = star_indexes
        exact = linear_topk_search(indexes, query, k=5)
        sampled = linear_topk_search(
            indexes,
            query,
            k=5,
            sampling_threshold=0,
            sampling_rate=0.3,
            seed=11,
        )
        assert sampled.stats.roots_expanded < exact.stats.roots_expanded
        assert sampled.stats.sampled_types >= 1

    def test_sampled_topk_rescored_exactly(self, star_indexes):
        """Estimated selection, exact final scores (Algorithm 4 line 11)."""
        indexes, query = star_indexes
        exact = linear_topk_search(indexes, query, k=1)
        sampled = linear_topk_search(
            indexes,
            query,
            k=1,
            sampling_threshold=0,
            sampling_rate=0.5,
            seed=3,
        )
        assert sampled.num_answers == 1
        answer = sampled.answers[0]
        # The star has one pattern; sampling can't miss it at this rate and
        # the exact re-scoring must recover the true score and row count.
        assert answer.score == pytest.approx(exact.answers[0].score)
        assert answer.num_subtrees == 40
        assert answer.estimated_score is not None
        assert sampled.stats.rescored_patterns >= 1

    def test_threshold_disables_sampling_for_small_types(self, star_indexes):
        indexes, query = star_indexes
        result = linear_topk_search(
            indexes,
            query,
            k=5,
            sampling_threshold=10_000,  # more subtrees than exist
            sampling_rate=0.1,
            seed=0,
        )
        assert result.stats.sampled_types == 0
        assert result.answers[0].num_subtrees == 40

    def test_seed_reproducibility(self, star_indexes):
        indexes, query = star_indexes
        kwargs = dict(
            k=3, sampling_threshold=0, sampling_rate=0.4, seed=42
        )
        first = linear_topk_search(indexes, query, **kwargs)
        second = linear_topk_search(indexes, query, **kwargs)
        assert first.scores() == second.scores()
        assert first.stats.roots_expanded == second.stats.roots_expanded


class TestPrecisionOnFixture:
    def test_moderate_sampling_keeps_high_precision(self, wiki_indexes):
        """On the wiki fixture, rho=0.5 recovers most of the exact top-10."""
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes, WorkloadConfig(queries_per_size=2, max_keywords=3)
        )
        checked = 0
        total_precision = 0.0
        for query in queries:
            exact = linear_topk_search(wiki_indexes, query, k=10)
            if exact.num_answers < 3:
                continue
            sampled = linear_topk_search(
                wiki_indexes,
                query,
                k=10,
                sampling_threshold=0,
                sampling_rate=0.5,
                seed=1,
            )
            exact_keys = set(exact.pattern_keys())
            sampled_keys = set(sampled.pattern_keys())
            total_precision += len(exact_keys & sampled_keys) / len(exact_keys)
            checked += 1
        assert checked > 0
        assert total_precision / checked >= 0.5
