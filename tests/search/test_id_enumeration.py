"""Differential tests: id-based enumeration vs the entry-based reference.

The production algorithms enumerate integer path ids against the columnar
store (``repro.search.expand``); :mod:`repro.search.reference` preserves
the pre-refactor pipeline that materialized every
:class:`~repro.index.entry.PathEntry`.  For all four algorithms the two
must be *identical* — same answers, same (bit-equal) scores, same stats
counters — on fixtures and on randomized graphs.

Also here: the regression tests that ``keep_subtrees=False`` workloads
materialize **zero** path entries, which is the refactor's point.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.builder import build_indexes
from repro.index.entry import PathEntry
from repro.kg.graph import KnowledgeGraph
from repro.search.baseline import baseline_search
from repro.search.linear_enum import linear_enum_search
from repro.search.linear_topk import linear_topk_search
from repro.search.pattern_enum import pattern_enum_search
from repro.search.reference import (
    reference_baseline_search,
    reference_linear_enum_search,
    reference_linear_topk_search,
    reference_pattern_enum_search,
)

#: (production, reference) per algorithm, with any extra kwargs.  The
#: production algorithms run with ``prune=False`` where they accept it:
#: this suite pins the *exhaustive* id-based walk — including every stats
#: counter — against the entry-based oracle; the bound-driven pruned path
#: is differentially tested against the unpruned one (answers, not work
#: counters) in ``tests/search/test_pruning.py``.
PAIRS = {
    "pattern_enum": (pattern_enum_search, reference_pattern_enum_search, {}),
    "linear_enum": (linear_enum_search, reference_linear_enum_search, {}),
    "linear_topk": (linear_topk_search, reference_linear_topk_search, {}),
    "baseline": (baseline_search, reference_baseline_search, {}),
    "linear_topk_sampled": (
        linear_topk_search,
        reference_linear_topk_search,
        {"sampling_threshold": 0, "sampling_rate": 0.5, "seed": 11},
    ),
}

#: Production-only kwargs (the frozen reference has no pruning switch).
PROD_ONLY = {
    "pattern_enum": {"prune": False},
    "linear_topk": {"prune": False},
    "linear_topk_sampled": {"prune": False},
}

#: Counters that must agree exactly (elapsed_seconds obviously excluded).
STAT_FIELDS = (
    "algorithm",
    "candidate_roots",
    "roots_expanded",
    "patterns_checked",
    "empty_patterns",
    "nonempty_patterns",
    "subtrees_enumerated",
    "tree_check_rejections",
    "sampled_types",
    "rescored_patterns",
)


def assert_identical(actual, expected):
    """Answers, scores, subtrees, and stats counters all bit-equal."""
    assert actual.query == expected.query
    assert actual.k == expected.k
    assert actual.d == expected.d
    assert actual.num_answers == expected.num_answers
    for ours, theirs in zip(actual.answers, expected.answers):
        assert ours.pattern_key == theirs.pattern_key
        assert ours.pattern == theirs.pattern
        assert ours.score == theirs.score  # bit-equal, not approx
        assert ours.num_subtrees == theirs.num_subtrees
        assert ours.estimated_score == theirs.estimated_score
        assert len(ours.subtrees) == len(theirs.subtrees)
        for combo_ref, entry_combo in zip(ours.subtrees, theirs.subtrees):
            # ComboRef materializes lazily and must compare equal to the
            # reference's plain entry tuple (and hash identically).
            assert combo_ref == entry_combo
            assert hash(combo_ref) == hash(tuple(entry_combo))
    for field in STAT_FIELDS:
        assert getattr(actual.stats, field) == getattr(
            expected.stats, field
        ), field


def run_pair(indexes, query, name, k=20, **kwargs):
    production, reference, extra = PAIRS[name]
    params = {**extra, **kwargs}
    prod_params = {**params, **PROD_ONLY.get(name, {})}
    assert_identical(
        production(indexes, query, k=k, **prod_params),
        reference(indexes, query, k=k, **params),
    )


class TestOnFixtures:
    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_example(self, example_indexes, example_query, name):
        run_pair(example_indexes, example_query, name)

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_example_no_subtrees(self, example_indexes, example_query, name):
        run_pair(example_indexes, example_query, name, keep_subtrees=False)

    @pytest.mark.parametrize("name", sorted(PAIRS))
    def test_wiki_workload(self, wiki_indexes, name):
        from repro.datasets.queries import WorkloadConfig, generate_workload

        queries = generate_workload(
            wiki_indexes,
            WorkloadConfig(queries_per_size=1, max_keywords=3, seed=29),
        )
        assert queries
        for query in queries:
            run_pair(wiki_indexes, query, name, k=10)


# ---------------------------------------------------------------- hypothesis

WORDS = ["apple", "berry", "cedar", "delta"]
TYPES = ["T0", "T1", "T2"]
ATTRS = ["a0", "a1"]


@st.composite
def random_graph_and_query(draw):
    """A small random typed digraph plus a 1-3 word query."""
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    node_types = [draw(st.sampled_from(TYPES)) for _ in range(num_nodes)]
    node_texts = [
        " ".join(
            draw(
                st.lists(
                    st.sampled_from(WORDS), min_size=1, max_size=2, unique=True
                )
            )
        )
        for _ in range(num_nodes)
    ]
    possible_edges = [
        (u, v, a)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if u != v
        for a in ATTRS
    ]
    edges = draw(
        st.lists(
            st.sampled_from(possible_edges),
            max_size=min(12, len(possible_edges)),
            unique=True,
        )
    )
    query = draw(
        st.lists(st.sampled_from(WORDS), min_size=1, max_size=3, unique=True)
    )
    graph = KnowledgeGraph()
    for node_type, text in zip(node_types, node_texts):
        graph.add_node(node_type, text)
    for u, v, a in edges:
        graph.add_edge(u, a, v)
    return graph, tuple(query)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_graph_and_query(), st.integers(min_value=1, max_value=3))
def test_differential_on_random_graphs(graph_and_query, d):
    """Production == reference on arbitrary cyclic typed digraphs."""
    graph, query = graph_and_query
    indexes = build_indexes(graph, d=d)
    for name in sorted(PAIRS):
        run_pair(indexes, query, name, k=15)
        run_pair(indexes, query, name, k=15, keep_subtrees=False)


# ------------------------------------------------------- zero materialization


@pytest.fixture()
def entry_counter(monkeypatch):
    """Count every PathEntry construction, whatever the code path."""
    counter = {"count": 0}
    original = PathEntry.__new__

    def counting_new(cls, *args, **kwargs):
        counter["count"] += 1
        return original(cls, *args, **kwargs)

    monkeypatch.setattr(PathEntry, "__new__", counting_new)
    return counter


SEARCHES = {
    "pattern_enum": (pattern_enum_search, {}),
    "linear_enum": (linear_enum_search, {}),
    "linear_topk": (linear_topk_search, {}),
    "linear_topk_sampled": (
        linear_topk_search,
        {"sampling_threshold": 0, "sampling_rate": 0.5, "seed": 3},
    ),
    "baseline": (baseline_search, {}),
}


@pytest.mark.parametrize("name", sorted(SEARCHES))
def test_keep_subtrees_false_materializes_nothing(
    example_indexes, example_query, name, entry_counter
):
    """The refactor's contract: count-only workloads build zero entries."""
    search, extra = SEARCHES[name]
    result = search(
        example_indexes, example_query, k=10, keep_subtrees=False, **extra
    )
    assert result.num_answers > 0
    assert entry_counter["count"] == 0


def test_keep_subtrees_true_materializes_lazily(
    example_indexes, example_query, entry_counter
):
    """Kept subtrees stay as ids until an answer is actually read."""
    result = pattern_enum_search(example_indexes, example_query, k=5)
    assert result.num_answers > 0
    assert entry_counter["count"] == 0  # nothing materialized yet
    top = result.answers[0]
    rows = top.materialize()
    assert rows  # the boundary access materializes ...
    assert entry_counter["count"] > 0  # ... and only then
    # Re-reading is cached: no further constructions.
    before = entry_counter["count"]
    top.materialize()
    assert entry_counter["count"] == before


def test_store_counts_materializations(example_indexes, example_query):
    """`entries_materialized` tracks make_entry through the store."""
    store = example_indexes.store
    before = store.entries_materialized
    result = pattern_enum_search(
        example_indexes, example_query, k=5, keep_subtrees=False
    )
    assert result.num_answers > 0
    assert store.entries_materialized == before
    kept = pattern_enum_search(example_indexes, example_query, k=5)
    kept.answers[0].materialize()
    assert store.entries_materialized > before


class TestSharedContextGuards:
    def test_context_for_other_index_rejected(self, example_indexes):
        from repro.core.errors import SearchError
        from repro.search.context import EnumerationContext

        graph = KnowledgeGraph()
        graph.add_node("T0", "apple")
        other = build_indexes(graph, d=1)
        context = EnumerationContext(other, "apple")
        with pytest.raises(SearchError):
            pattern_enum_search(example_indexes, "apple", context=context)

    def test_context_for_other_resolved_query_rejected(
        self, example_indexes, example_query
    ):
        from repro.core.errors import SearchError
        from repro.index.builder import ResolvedQuery
        from repro.search.context import EnumerationContext

        context = EnumerationContext(example_indexes, example_query)
        with pytest.raises(SearchError):
            pattern_enum_search(
                example_indexes, ResolvedQuery(("microsoft",)), context=context
            )


def test_linear_topk_exact_equals_sampled_rate_one(example_indexes, example_query):
    """rate=1 sampling path is the exact path, id-based end to end."""
    exact = linear_topk_search(
        example_indexes, example_query, k=10,
        sampling_threshold=math.inf,
    )
    degenerate = linear_topk_search(
        example_indexes, example_query, k=10,
        sampling_threshold=0, sampling_rate=1.0,
    )
    assert exact.scores() == degenerate.scores()
    assert exact.pattern_keys() == degenerate.pattern_keys()
