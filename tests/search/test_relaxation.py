"""Query relaxation: dropping keywords to recover answers."""

import pytest

from repro.search.relaxation import relaxed_search


class TestNoRelaxationNeeded:
    def test_answerable_query_untouched(self, example_indexes, example_query):
        relaxed = relaxed_search(example_indexes, example_query, k=5)
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers > 0
        assert relaxed.dropped_keywords == ()

    def test_single_keyword_never_relaxed(self, example_indexes):
        relaxed = relaxed_search(example_indexes, "xylophone", k=5)
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers == 0


class TestRelaxation:
    def test_one_bad_keyword_dropped(self, example_indexes):
        relaxed = relaxed_search(
            example_indexes, "microsoft revenue xylophone", k=5
        )
        assert relaxed.was_relaxed
        assert relaxed.dropped_keywords == ("xylophon",)
        assert set(relaxed.kept_keywords) == {"microsoft", "revenu"}
        assert relaxed.result.num_answers > 0

    def test_caller_context_does_not_leak_into_retries(self, example_indexes):
        # A shared per-query context resolves the *full* query; subset
        # retries must not inherit it, or they would search the original
        # keywords again and relaxation could never recover answers.
        from repro.search.context import EnumerationContext

        query = "microsoft revenue xylophone"
        context = EnumerationContext(example_indexes, query)
        relaxed = relaxed_search(example_indexes, query, k=5, context=context)
        assert relaxed.was_relaxed
        assert relaxed.dropped_keywords == ("xylophon",)
        assert relaxed.result.num_answers > 0

    def test_prefers_fewer_drops(self, example_indexes):
        relaxed = relaxed_search(
            example_indexes, "microsoft revenue qqq zzz", k=5
        )
        assert relaxed.was_relaxed
        assert len(relaxed.dropped_keywords) == 2  # both unknowns must go
        assert set(relaxed.kept_keywords) == {"microsoft", "revenu"}

    def test_drops_least_selective_first(self, example_indexes):
        """Two disconnected-but-known keywords: the more common one goes."""
        # 'company' matches three entities, 'gates' only one; pairing each
        # with an unknown word forces a drop: the relaxer keeps the query
        # answerable while preferring to drop high-frequency words.
        relaxed = relaxed_search(example_indexes, "gates company", k=5)
        if relaxed.was_relaxed:
            assert relaxed.dropped_keywords == ("compani",)

    def test_max_dropped_respected(self, example_indexes):
        relaxed = relaxed_search(
            example_indexes, "microsoft qqq zzz", k=5, max_dropped=1
        )
        # Needs two drops but only one allowed: original empty result.
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers == 0

    def test_totally_unanswerable(self, example_indexes):
        relaxed = relaxed_search(example_indexes, "qqq zzz", k=5)
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers == 0


class TestExports:
    def test_table_csv_and_json(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        from repro.search.pattern_enum import pattern_enum_search

        result = pattern_enum_search(indexes, example_query, k=1)
        table = result.answers[0].to_table(graph)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "Software,Model,Company,Revenue"
        assert "SQL Server,Relational database,Microsoft,US$ 77 billion" in csv_text
        import json

        records = json.loads(table.to_json_records())
        assert len(records) == 2
        assert records[0]["Software"] in {"SQL Server", "Oracle DB"}
