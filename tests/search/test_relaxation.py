"""Query relaxation: dropping keywords to recover answers."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.index.builder import build_indexes
from repro.search.pattern_enum import pattern_enum_search
from repro.search.relaxation import relaxed_search


class TestNoRelaxationNeeded:
    def test_answerable_query_untouched(self, example_indexes, example_query):
        relaxed = relaxed_search(example_indexes, example_query, k=5)
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers > 0
        assert relaxed.dropped_keywords == ()

    def test_single_keyword_never_relaxed(self, example_indexes):
        relaxed = relaxed_search(example_indexes, "xylophone", k=5)
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers == 0


class TestRelaxation:
    def test_one_bad_keyword_dropped(self, example_indexes):
        relaxed = relaxed_search(
            example_indexes, "microsoft revenue xylophone", k=5
        )
        assert relaxed.was_relaxed
        assert relaxed.dropped_keywords == ("xylophon",)
        assert set(relaxed.kept_keywords) == {"microsoft", "revenu"}
        assert relaxed.result.num_answers > 0

    def test_caller_context_does_not_leak_into_retries(self, example_indexes):
        # A shared per-query context resolves the *full* query; subset
        # retries must not inherit it, or they would search the original
        # keywords again and relaxation could never recover answers.
        from repro.search.context import EnumerationContext

        query = "microsoft revenue xylophone"
        context = EnumerationContext(example_indexes, query)
        relaxed = relaxed_search(example_indexes, query, k=5, context=context)
        assert relaxed.was_relaxed
        assert relaxed.dropped_keywords == ("xylophon",)
        assert relaxed.result.num_answers > 0

    def test_prefers_fewer_drops(self, example_indexes):
        relaxed = relaxed_search(
            example_indexes, "microsoft revenue qqq zzz", k=5
        )
        assert relaxed.was_relaxed
        assert len(relaxed.dropped_keywords) == 2  # both unknowns must go
        assert set(relaxed.kept_keywords) == {"microsoft", "revenu"}

    def test_drops_least_selective_first(self, example_indexes):
        """Two disconnected-but-known keywords: the more common one goes."""
        # 'company' matches three entities, 'gates' only one; pairing each
        # with an unknown word forces a drop: the relaxer keeps the query
        # answerable while preferring to drop high-frequency words.
        relaxed = relaxed_search(example_indexes, "gates company", k=5)
        if relaxed.was_relaxed:
            assert relaxed.dropped_keywords == ("compani",)

    def test_max_dropped_respected(self, example_indexes):
        relaxed = relaxed_search(
            example_indexes, "microsoft qqq zzz", k=5, max_dropped=1
        )
        # Needs two drops but only one allowed: original empty result.
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers == 0

    def test_totally_unanswerable(self, example_indexes):
        relaxed = relaxed_search(example_indexes, "qqq zzz", k=5)
        assert not relaxed.was_relaxed
        assert relaxed.result.num_answers == 0


class TestRelaxationOrdering:
    """The candidate order is (fewest drops, most-frequent dropped first),
    screened by root-set intersections before any search runs."""

    @pytest.fixture(scope="class")
    def disconnected_indexes(self):
        """Two disjoint components; 'common' is far more frequent than
        'rare', and neither co-occurs with the other component's words."""
        from repro.kg.graph import KnowledgeGraph

        graph = KnowledgeGraph()
        for _ in range(4):
            a = graph.add_node("T0", "common filler")
            b = graph.add_node("T1", "common other")
            graph.add_edge(a, "rel", b)
        x = graph.add_node("T2", "rare")
        y = graph.add_node("T3", "target")
        graph.add_edge(x, "rel", y)
        return build_indexes(graph, d=2)

    def test_most_frequent_keyword_dropped_first(self, disconnected_indexes):
        # 'common target' has no joint answers; both single-keyword
        # subsets are answerable.  The relaxer must drop the *more
        # frequent* keyword ('common', 8 postings) and keep 'target'.
        relaxed = relaxed_search(disconnected_indexes, "common target", k=5)
        assert relaxed.was_relaxed
        assert relaxed.dropped_keywords == ("common",)
        assert relaxed.kept_keywords == ("target",)
        assert relaxed.result.num_answers > 0

    def test_fewest_drops_beat_frequency(self, disconnected_indexes):
        # Dropping one keyword suffices; a two-drop subset with even
        # higher dropped frequency must not be preferred.
        relaxed = relaxed_search(
            disconnected_indexes, "common rare target", k=5
        )
        assert relaxed.was_relaxed
        assert len(relaxed.dropped_keywords) == 1
        assert relaxed.dropped_keywords == ("common",)

    def test_unanswerable_subsets_screened_without_search(
        self, disconnected_indexes, monkeypatch
    ):
        # The screening uses root-set intersections only: the engine must
        # run once for the full query and once for the winning subset —
        # never for the unanswerable intermediate ones.
        import repro.search.relaxation as relaxation_module

        calls = []
        real_search = relaxation_module.pattern_enum_search

        def counting_search(indexes, query, **kwargs):
            result = real_search(indexes, query, **kwargs)
            calls.append(tuple(result.query))
            return result

        monkeypatch.setattr(
            relaxation_module, "pattern_enum_search", counting_search
        )
        relaxed = relaxed_search(disconnected_indexes, "common rare", k=5)
        assert relaxed.was_relaxed
        assert len(calls) == 2  # full query + the one screened survivor


from tests.search.test_id_enumeration import random_graph_and_query


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_graph_and_query())
def test_relaxation_never_shadows_exact_matches(graph_and_query):
    """Property: when the unrelaxed query has answers, relaxation must
    return exactly those answers — a relaxed (subset) query, whose
    patterns cover fewer keywords, must never replace or outrank an
    unrelaxed exact match."""
    graph, query = graph_and_query
    indexes = build_indexes(graph, d=2)
    exact = pattern_enum_search(indexes, query, k=10)
    relaxed = relaxed_search(indexes, query, k=10)
    if exact.num_answers:
        assert not relaxed.was_relaxed
        assert relaxed.result.scores() == exact.scores()
        assert relaxed.result.pattern_keys() == exact.pattern_keys()
    elif relaxed.was_relaxed:
        # A relaxation happened: it searched a strict keyword subset and
        # actually recovered something.
        assert set(relaxed.kept_keywords) < set(exact.query)
        assert relaxed.result.num_answers > 0
        # Every relaxed answer covers exactly the kept keywords, never
        # a superset scoring above the (empty) exact result.
        for answer in relaxed.result.answers:
            assert answer.pattern.num_keywords == len(relaxed.kept_keywords)


class TestExports:
    def test_table_csv_and_json(self, example_bundle, example_query):
        graph, _nodes, indexes = example_bundle
        from repro.search.pattern_enum import pattern_enum_search

        result = pattern_enum_search(indexes, example_query, k=1)
        table = result.answers[0].to_table(graph)
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "Software,Model,Company,Revenue"
        assert "SQL Server,Relational database,Microsoft,US$ 77 billion" in csv_text
        import json

        records = json.loads(table.to_json_records())
        assert len(records) == 2
        assert records[0]["Software"] in {"SQL Server", "Oracle DB"}
