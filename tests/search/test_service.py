"""SearchService: cross-query caching, snapshots, and concurrent serving.

The contract under test is the serving analogue of the id-enumeration
oracle suite: everything the service returns — through any cache tier,
any thread count, any batch path — must be bit-identical to a cold
single-threaded ``TableAnswerEngine.search()`` on the same store
version, and concurrent readers racing an incremental writer must only
ever observe results belonging to *some* complete store version.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import SearchError
from repro.datasets.example import EXAMPLE_NORMALIZER, example_graph_with_nodes
from repro.index.builder import build_indexes
from repro.index.incremental import add_entity, add_relationship
from repro.kg.pagerank import uniform_scores
from repro.search.engine import TableAnswerEngine
from repro.search.service import SearchService

QUERY = "database software company revenue"


def fingerprint(result):
    """Everything that identifies an answer set bit-for-bit."""
    return (
        result.scores(),
        result.pattern_keys(),
        [answer.num_subtrees for answer in result.answers],
        [list(answer.subtrees) for answer in result.answers],
    )


def cold_search(indexes, query, **kwargs):
    """A fresh engine on a fresh snapshot: the no-cache reference."""
    snap = indexes.snapshot()
    return TableAnswerEngine(snap.graph, indexes=snap).search(query, **kwargs)


@pytest.fixture()
def mutable_bundle():
    """A private example-graph bundle tests may mutate freely."""
    graph, nodes = example_graph_with_nodes()
    indexes = build_indexes(
        graph,
        d=3,
        normalizer=EXAMPLE_NORMALIZER,
        pagerank_scores=uniform_scores(graph),
    )
    return graph, nodes, indexes


@pytest.fixture(scope="module")
def wiki_service(wiki_indexes):
    return SearchService(wiki_indexes)


class TestBitIdentical:
    @pytest.mark.parametrize(
        "algorithm",
        ["pattern_enum", "linear", "letopk", "linear_full", "baseline"],
    )
    def test_matches_cold_engine(self, example_indexes, algorithm):
        service = SearchService(example_indexes)
        served = service.search(QUERY, k=5, algorithm=algorithm)
        cold = cold_search(example_indexes, QUERY, k=5, algorithm=algorithm)
        assert fingerprint(served) == fingerprint(cold)

    def test_warm_hits_are_the_same_answers(self, example_indexes):
        service = SearchService(example_indexes)
        first = service.search(QUERY, k=5)
        second = service.search(QUERY, k=5)
        assert not first.stats.from_result_cache
        assert second.stats.from_result_cache
        # Shared answer objects (no recomputation), fresh stats copy.
        assert second.answers is first.answers
        assert second.stats is not first.stats
        assert not first.stats.from_result_cache  # original never mutated
        assert service.stats.result_hits == 1

    def test_spelling_and_alias_share_cache(self, example_indexes):
        service = SearchService(example_indexes)
        service.search("Software Company!", k=3, algorithm="letopk")
        hit = service.search("software   company", k=3,
                             algorithm="linear_topk")
        assert hit.stats.from_result_cache

    def test_uncacheable_plans_bypass_result_cache(self, example_indexes):
        service = SearchService(example_indexes)
        kwargs = dict(
            k=3, algorithm="letopk", seed=None,
            sampling_threshold=1, sampling_rate=0.5,
        )
        service.search(QUERY, **kwargs)
        again = service.search(QUERY, **kwargs)
        assert not again.stats.from_result_cache

    def test_fragment_tier_shared_across_k_and_algorithms(
        self, example_indexes
    ):
        service = SearchService(example_indexes)
        service.search(QUERY, k=3)
        service.search(QUERY, k=7)                       # same words, new k
        service.search(QUERY, k=3, algorithm="linear")   # new algorithm
        assert service.stats.context_hits == 2
        assert service.stats.context_misses == 1

    def test_candidate_fragments_cross_word_order(self, example_indexes):
        service = SearchService(example_indexes)
        service.search("software company", k=3)
        service.search("company software", k=3)
        assert service.stats.candidate_hits == 1


class TestInvalidation:
    def test_version_bump_flushes_and_recomputes(self, mutable_bundle):
        _graph, _nodes, indexes = mutable_bundle
        service = SearchService(indexes)
        query = "company"
        before = service.search(query, k=10)
        assert service.search(query, k=10).stats.from_result_cache

        add_entity(indexes, "Company", "Freshly Added Company")
        after = service.search(query, k=10)
        assert not after.stats.from_result_cache
        assert service.stats.invalidations == 1
        # The new singleton subtree is actually visible.
        totals = lambda r: sum(a.num_subtrees for a in r.answers)  # noqa: E731
        assert totals(after) == totals(before) + 1
        assert fingerprint(after) == fingerprint(
            cold_search(indexes, query, k=10)
        )

    def test_snapshot_survives_mutation(self, mutable_bundle):
        _graph, nodes, indexes = mutable_bundle
        snap = indexes.snapshot()
        engine = TableAnswerEngine(snap.graph, indexes=snap)
        before = fingerprint(engine.search(QUERY, k=5))
        pinned = snap.store.version

        new_node = add_entity(indexes, "Company", "Mutation Corp")
        add_relationship(indexes, nodes["SQL Server"], "developer", new_node)
        assert indexes.store.version > pinned
        assert snap.store.version == pinned
        assert fingerprint(engine.search(QUERY, k=5)) == before

    def test_result_not_cached_when_writer_races_execution(
        self, mutable_bundle, monkeypatch
    ):
        # A result computed while the store version moved may reflect a
        # mid-update world (the baseline walks the live graph); it must
        # not be admitted to the result cache.
        import repro.search.service as service_module

        _graph, _nodes, indexes = mutable_bundle
        service = SearchService(indexes)
        real_execute = service_module.execute_plan

        def racing_execute(snap, plan, context=None, **kwargs):
            result = real_execute(snap, plan, context=context, **kwargs)
            add_entity(indexes, "Company", "Raced In Mid Query")
            return result

        monkeypatch.setattr(service_module, "execute_plan", racing_execute)
        service.search("company", k=5)
        monkeypatch.setattr(service_module, "execute_plan", real_execute)
        assert service.cache_sizes()["results"] == 0
        again = service.search("company", k=5)
        assert not again.stats.from_result_cache

    def test_manual_invalidate(self, example_indexes):
        service = SearchService(example_indexes)
        service.search(QUERY, k=3)
        service.invalidate()
        assert service.cache_sizes()["results"] == 0
        result = service.search(QUERY, k=3)
        assert not result.stats.from_result_cache

    def test_service_rejects_snapshot_bundle(self, example_indexes):
        with pytest.raises(SearchError, match="live"):
            SearchService(example_indexes.snapshot())


class TestBatch:
    def test_order_dedup_and_equivalence(self, example_indexes):
        service = SearchService(example_indexes)
        queries = [
            "software company",
            QUERY,
            "Software Company",   # same plan as the first, spelled oddly
            "database revenue",
            QUERY,
        ]
        results = service.search_many(queries, k=3)
        assert len(results) == len(queries)
        assert fingerprint(results[0]) == fingerprint(results[2])
        assert fingerprint(results[1]) == fingerprint(results[4])
        assert results[2].stats.from_result_cache
        assert service.stats.batch_deduped == 2
        for query, result in zip(queries, results):
            assert fingerprint(result) == fingerprint(
                cold_search(example_indexes, query, k=3)
            )

    def test_threads_match_inline(self, wiki_service, wiki_indexes):
        vocab = sorted(wiki_indexes.root_first.words())
        queries = [
            " ".join(vocab[i::7][:2]) for i in range(0, 21, 3)
        ]
        inline = wiki_service.search_many(queries, k=5)
        wiki_service.invalidate()
        threaded = wiki_service.search_many(queries, k=5, threads=4)
        assert [fingerprint(r) for r in inline] == [
            fingerprint(r) for r in threaded
        ]

    def test_processes_match_inline(self, example_indexes):
        service = SearchService(example_indexes)
        queries = [QUERY, "software company", "database revenue"]
        inline = service.search_many(queries, k=3, keep_subtrees=False)
        service.invalidate()
        forked = service.search_many(
            queries, k=3, keep_subtrees=False, processes=2
        )
        assert [(r.scores(), r.pattern_keys()) for r in inline] == [
            (r.scores(), r.pattern_keys()) for r in forked
        ]

    def test_processes_keep_subtrees_rows_match_inline(
        self, example_indexes
    ):
        # Kept subtree combos are ComboRef store views in the child; the
        # fork path must ship them back as value-equal PathEntry tuples
        # (the old behavior was a loud "requires keep_subtrees=False"
        # error).
        service = SearchService(example_indexes)
        queries = [QUERY, "software company", "database revenue"]
        inline = service.search_many(queries, k=3)
        service.invalidate()
        forked = service.search_many(queries, k=3, processes=2)
        assert [fingerprint(r) for r in inline] == [
            fingerprint(r) for r in forked
        ]
        for reference, result in zip(inline, forked):
            for ref_answer, answer in zip(reference.answers, result.answers):
                assert [
                    tuple(combo) for combo in ref_answer.subtrees
                ] == list(answer.subtrees)

    def test_threads_and_processes_exclusive(self, example_indexes):
        service = SearchService(example_indexes)
        with pytest.raises(SearchError, match="not both"):
            service.search_many(
                [QUERY], threads=2, processes=2, keep_subtrees=False
            )


class TestConcurrentServing:
    """N reader threads against a mutating incremental index."""

    READERS = 4
    UPDATES = 6

    def test_readers_see_only_version_consistent_snapshots(
        self, mutable_bundle
    ):
        _graph, _nodes, indexes = mutable_bundle
        service = SearchService(indexes)
        query = "company"  # every added entity matches it

        # version -> oracle fingerprint, recorded at every update boundary
        # (the store lock makes boundaries the only observable states).
        oracles = {}

        def record():
            snap = indexes.snapshot()
            result = TableAnswerEngine(snap.graph, indexes=snap).search(
                query, k=10
            )
            oracles[snap.store.version] = (
                result.scores(),
                result.pattern_keys(),
                [a.num_subtrees for a in result.answers],
            )

        record()
        stop = threading.Event()
        observed = []
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    result = service.search(query, k=10)
                    observed.append(
                        (
                            result.scores(),
                            result.pattern_keys(),
                            [a.num_subtrees for a in result.answers],
                        )
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            try:
                for i in range(self.UPDATES):
                    add_entity(indexes, "Company", f"Company Number {i}")
                    record()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=reader) for _ in range(self.READERS)
        ] + [threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert observed
        valid = set(map(repr, oracles.values()))
        torn = [o for o in observed if repr(o) not in valid]
        assert not torn, f"{len(torn)} reader results match no version"
        # And the updates were actually picked up by the end.
        final = service.search(query, k=10)
        assert (
            final.scores(),
            final.pattern_keys(),
            [a.num_subtrees for a in final.answers],
        ) == oracles[max(oracles)]

    def test_concurrent_distinct_queries_share_caches_safely(
        self, wiki_service, wiki_indexes
    ):
        vocab = sorted(wiki_indexes.root_first.words())
        queries = [" ".join(vocab[i::11][:2]) for i in range(11)]
        expected = {
            q: fingerprint(cold_search(wiki_indexes, q, k=5))
            for q in queries
        }
        errors = []

        def hammer(worker: int):
            try:
                for i in range(3):
                    q = queries[(worker + i) % len(queries)]
                    got = fingerprint(wiki_service.search(q, k=5))
                    assert got == expected[q]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors


class TestDifferentialHypothesis:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_served_equals_cold(self, wiki_service, wiki_indexes, data):
        vocab = sorted(wiki_indexes.root_first.words())
        words = data.draw(
            st.lists(
                st.sampled_from(vocab), min_size=1, max_size=3, unique=True
            )
        )
        k = data.draw(st.integers(min_value=1, max_value=8))
        algorithm = data.draw(
            st.sampled_from(["pattern_enum", "linear", "linear_full"])
        )
        query = " ".join(words)
        served = wiki_service.search(query, k=k, algorithm=algorithm)
        cold = cold_search(wiki_indexes, query, k=k, algorithm=algorithm)
        assert fingerprint(served) == fingerprint(cold)
