"""Legacy setup shim.

This environment ships setuptools without the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build their metadata wheel.
This shim lets ``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
on newer toolchains) work; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
